#include "campaign/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "campaign/store.hpp"
#include "util/rng.hpp"

namespace idseval::campaign {
namespace {

/// Fast spec: short windows, small enclave, single attack per kind.
CampaignSpec fast_spec() {
  CampaignSpec spec;
  spec.name = "sched-test";
  spec.products = {products::ProductId::kSentryNid,
                   products::ProductId::kFlowHunt};
  spec.profiles = {"rt_cluster"};
  spec.sensitivities = {0.3, 0.7};
  spec.replicates = 2;
  spec.base_seed = 7;
  spec.attacks_per_kind = 1;
  spec.internal_hosts = 4;
  spec.external_hosts = 2;
  spec.warmup_sec = 1.0;
  spec.measure_sec = 3.0;
  return spec;
}

/// Synthetic runner: deterministic in the cell, no simulation.
CellResult fake_runner(const CampaignSpec&, const CampaignCell& cell,
                       harness::RunContext&) {
  CellResult r;
  r.cell = cell;
  r.ok = true;
  r.score_total = static_cast<double>(cell.seed % 1000);
  r.fp_percent_of_benign = cell.sensitivity * 10.0;
  r.fn_percent_of_attacks = (1.0 - cell.sensitivity) * 10.0;
  return r;
}

std::string store_path(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "idseval_scheduler_test";
  std::filesystem::create_directories(dir);
  return (dir / (tag + ".jsonl")).string();
}

TEST(ExpandCellsTest, CanonicalOrderAndDerivedSeeds) {
  const CampaignSpec spec = fast_spec();
  const auto cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), spec.cell_count());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].seed, util::derive_seed(spec.base_seed, i));
  }
  // products outer, replicates inner
  EXPECT_EQ(cells[0].product, products::ProductId::kSentryNid);
  EXPECT_EQ(cells[0].replicate, 0u);
  EXPECT_EQ(cells[1].replicate, 1u);
  EXPECT_DOUBLE_EQ(cells[0].sensitivity, 0.3);
  EXPECT_DOUBLE_EQ(cells[2].sensitivity, 0.7);
  EXPECT_EQ(cells[4].product, products::ProductId::kFlowHunt);
  // All seeds distinct.
  std::set<std::uint64_t> seeds;
  for (const auto& cell : cells) seeds.insert(cell.seed);
  EXPECT_EQ(seeds.size(), cells.size());
}

TEST(ExpandCellsTest, SeedsIndependentOfExecutionOrder) {
  // The seed of cell k must not depend on any other cell having run:
  // derive_seed is a pure function of (base, k).
  const CampaignSpec spec = fast_spec();
  const auto cells = expand_cells(spec);
  EXPECT_EQ(cells[5].seed, util::derive_seed(spec.base_seed, 5));
}

TEST(SchedulerTest, RunsAllCellsAndRecordsThem) {
  const CampaignSpec spec = fast_spec();
  ResultStore store(store_path("all_cells"), spec, /*fresh=*/true);
  RunOptions options;
  options.runner = fake_runner;
  options.jobs = 2;
  std::atomic<std::size_t> progress_calls{0};
  options.on_cell = [&](const CellResult&, std::size_t done,
                        std::size_t total) {
    ++progress_calls;
    EXPECT_LE(done, total);
  };
  const RunStats stats = run_campaign(spec, store, options);
  EXPECT_EQ(stats.total_cells, spec.cell_count());
  EXPECT_EQ(stats.executed, spec.cell_count());
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(store.ok_count(), spec.cell_count());
  EXPECT_EQ(progress_calls.load(), spec.cell_count());
}

TEST(SchedulerTest, WorkerCountDoesNotChangeResults) {
  const CampaignSpec spec = fast_spec();
  std::map<std::size_t, CellResult> by_jobs[2];
  const std::size_t jobs[] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    ResultStore store(store_path("jobs" + std::to_string(jobs[i])), spec,
                      /*fresh=*/true);
    RunOptions options;
    options.jobs = jobs[i];
    // Real evaluations: this is the determinism acceptance check at
    // unit-test scale.
    run_campaign(spec, store, options);
    by_jobs[i] = store.results();
  }
  ASSERT_EQ(by_jobs[0].size(), by_jobs[1].size());
  for (const auto& [index, a] : by_jobs[0]) {
    const CellResult& b = by_jobs[1].at(index);
    EXPECT_EQ(serialize_cell(a), serialize_cell(b)) << "cell " << index;
  }
}

TEST(SchedulerTest, ThrowingCellIsIsolatedNotFatal) {
  const CampaignSpec spec = fast_spec();
  ResultStore store(store_path("failing"), spec, /*fresh=*/true);
  RunOptions options;
  options.jobs = 3;
  options.runner = [](const CampaignSpec& s, const CampaignCell& cell,
                      harness::RunContext& ctx) {
    if (cell.index == 2) throw std::runtime_error("sensor exploded");
    return fake_runner(s, cell, ctx);
  };
  const RunStats stats = run_campaign(spec, store, options);
  EXPECT_EQ(stats.executed, spec.cell_count());
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(store.ok_count(), spec.cell_count() - 1);
  EXPECT_EQ(store.failed_count(), 1u);
  const CellResult& failed = store.results().at(2);
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.error, "sensor exploded");
}

TEST(SchedulerTest, ResumeSkipsCompletedAndRetriesFailed) {
  const CampaignSpec spec = fast_spec();
  const std::string path = store_path("resume");
  {
    ResultStore store(path, spec, /*fresh=*/true);
    RunOptions options;
    options.runner = [](const CampaignSpec& s, const CampaignCell& cell,
                        harness::RunContext& ctx) {
      if (cell.index >= 4) throw std::runtime_error("killed");
      return fake_runner(s, cell, ctx);
    };
    const RunStats stats = run_campaign(spec, store, options);
    EXPECT_EQ(stats.failed, spec.cell_count() - 4);
  }
  // Relaunch on the same spec: the 4 ok cells are skipped, the failed
  // ones re-run and now succeed.
  ResultStore store(path, spec, /*fresh=*/false);
  std::atomic<std::size_t> executed{0};
  RunOptions options;
  options.runner = [&](const CampaignSpec& s, const CampaignCell& cell,
                       harness::RunContext& ctx) {
    ++executed;
    EXPECT_GE(cell.index, 4u);  // completed cells must not rerun
    return fake_runner(s, cell, ctx);
  };
  const RunStats stats = run_campaign(spec, store, options);
  EXPECT_EQ(stats.skipped, 4u);
  EXPECT_EQ(stats.executed, spec.cell_count() - 4);
  EXPECT_EQ(executed.load(), spec.cell_count() - 4);
  EXPECT_EQ(store.ok_count(), spec.cell_count());
  EXPECT_EQ(stats.failed, 0u);
}

TEST(SchedulerTest, BackgroundAndSyncTraceWritersProduceIdenticalFiles) {
  const CampaignSpec spec = fast_spec();
  std::string contents[2];
  const bool background[] = {false, true};
  for (int i = 0; i < 2; ++i) {
    const std::string tag = background[i] ? "trace_bg" : "trace_sync";
    const std::string trace_path = store_path(tag + "_trace");
    {
      ResultStore store(store_path(tag), spec, /*fresh=*/true);
      telemetry::TraceSink trace(trace_path,
                                 telemetry::TraceSink::kDefaultCapacity,
                                 background[i]);
      RunOptions options;
      options.runner = fake_runner;
      // Single worker: cell events enqueue in index order, so the whole
      // file (not just a sorted view of it) must match across modes.
      options.jobs = 1;
      options.trace = &trace;
      run_campaign(spec, store, options);
      trace.close();
      EXPECT_EQ(trace.dropped(), 0u);
      EXPECT_EQ(trace.emitted(), spec.cell_count());
    }
    std::ifstream in(trace_path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    contents[i] = text.str();
  }
  EXPECT_FALSE(contents[0].empty());
  EXPECT_EQ(contents[0], contents[1]);
}

TEST(SchedulerTest, RunCellProducesPlausibleScores) {
  CampaignSpec spec = fast_spec();
  const auto cells = expand_cells(spec);
  harness::RunContext ctx;
  const CellResult result = run_cell(spec, cells[0], ctx);
  EXPECT_TRUE(result.ok);
  EXPECT_GT(result.score_total, 0.0);
  EXPECT_DOUBLE_EQ(result.score_total,
                   result.score_logistical + result.score_architectural +
                       result.score_performance);
  EXPECT_GE(result.fp_percent_of_benign, 0.0);
  EXPECT_LE(result.fp_percent_of_benign, 100.0);
  EXPECT_GE(result.fn_percent_of_attacks, 0.0);
  EXPECT_LE(result.fn_percent_of_attacks, 100.0);
  EXPECT_GT(result.offered_pps, 0.0);
  // load_metrics off => load columns stay zero
  EXPECT_DOUBLE_EQ(result.zero_loss_pps, 0.0);
  EXPECT_DOUBLE_EQ(result.system_throughput_pps, 0.0);
}

}  // namespace
}  // namespace idseval::campaign
