#include "campaign/spec.hpp"

#include <gtest/gtest.h>

namespace idseval::campaign {
namespace {

TEST(CampaignSpecTest, DefaultsCoverWholeCatalog) {
  const CampaignSpec spec = CampaignSpec::defaults();
  EXPECT_EQ(spec.products.size(), products::product_catalog().size());
  EXPECT_FALSE(spec.profiles.empty());
  EXPECT_EQ(spec.cell_count(),
            spec.products.size() * spec.profiles.size() *
                spec.sensitivities.size() * spec.replicates);
}

TEST(CampaignSpecTest, ParsesFullConfig) {
  const CampaignSpec spec = CampaignSpec::parse(R"(
    name = nightly
    products = GuardSecure, FlowHunt
    profiles = rt_cluster, office
    sensitivities = 0.25, 0.5, 0.75
    replicates = 5
    seed = 1234
    weights = ecommerce
    attacks_per_kind = 2
    load_metrics = true
    internal_hosts = 6
    external_hosts = 3
    warmup_sec = 5
    measure_sec = 15
  )");
  EXPECT_EQ(spec.name, "nightly");
  ASSERT_EQ(spec.products.size(), 2u);
  EXPECT_EQ(spec.products[0], products::ProductId::kGuardSecure);
  EXPECT_EQ(spec.products[1], products::ProductId::kFlowHunt);
  EXPECT_EQ(spec.profiles, (std::vector<std::string>{"rt_cluster",
                                                     "office"}));
  ASSERT_EQ(spec.sensitivities.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.sensitivities[1], 0.5);
  EXPECT_EQ(spec.replicates, 5u);
  EXPECT_EQ(spec.base_seed, 1234u);
  EXPECT_EQ(spec.weights, "ecommerce");
  EXPECT_EQ(spec.attacks_per_kind, 2u);
  EXPECT_TRUE(spec.load_metrics);
  EXPECT_EQ(spec.internal_hosts, 6u);
  EXPECT_EQ(spec.external_hosts, 3u);
  EXPECT_DOUBLE_EQ(spec.warmup_sec, 5.0);
  EXPECT_DOUBLE_EQ(spec.measure_sec, 15.0);
  EXPECT_EQ(spec.cell_count(), 2u * 2u * 3u * 5u);
}

TEST(CampaignSpecTest, ProductsAllSelectsCatalog) {
  const CampaignSpec spec = CampaignSpec::parse("products = all\n");
  EXPECT_EQ(spec.products.size(), products::product_catalog().size());
}

TEST(CampaignSpecTest, MissingKeysTakeDefaults) {
  const CampaignSpec spec = CampaignSpec::parse("name = minimal\n");
  const CampaignSpec base = CampaignSpec::defaults();
  EXPECT_EQ(spec.products, base.products);
  EXPECT_EQ(spec.replicates, base.replicates);
  EXPECT_EQ(spec.base_seed, base.base_seed);
  EXPECT_EQ(spec.weights, base.weights);
}

TEST(CampaignSpecTest, CanonicalRoundTrip) {
  CampaignSpec spec = CampaignSpec::defaults();
  spec.name = "rt";
  spec.sensitivities = {0.1, 0.9};
  spec.replicates = 3;
  spec.base_seed = 77;
  spec.weights = "ecommerce";
  const CampaignSpec copy = CampaignSpec::parse(spec.to_string());
  EXPECT_EQ(copy.to_string(), spec.to_string());
  EXPECT_EQ(copy.fingerprint(), spec.fingerprint());
  EXPECT_EQ(copy.cell_count(), spec.cell_count());
}

TEST(CampaignSpecTest, FingerprintSeesEveryAxis) {
  const CampaignSpec base = CampaignSpec::defaults();
  CampaignSpec changed = base;
  changed.base_seed += 1;
  EXPECT_NE(base.fingerprint(), changed.fingerprint());
  changed = base;
  changed.replicates += 1;
  EXPECT_NE(base.fingerprint(), changed.fingerprint());
  changed = base;
  changed.sensitivities.push_back(0.9);
  EXPECT_NE(base.fingerprint(), changed.fingerprint());
}

TEST(CampaignSpecTest, RejectsBadInput) {
  EXPECT_THROW(CampaignSpec::parse("products = NoSuchIDS\n"),
               std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse("profiles = mars_base\n"),
               std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse("sensitivities = 1.5\n"),
               std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse("sensitivities = banana\n"),
               std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse("replicates = 0\n"),
               std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse("weights = metric\n"),
               std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse("measure_sec = 0\n"),
               std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse("internal_hosts = 0\n"),
               std::invalid_argument);
}

TEST(CampaignSpecTest, WeightSetMatchesRequirementProfiles) {
  CampaignSpec spec = CampaignSpec::defaults();
  spec.weights = "realtime";
  EXPECT_FALSE(spec.weight_set().weights().empty());
  spec.weights = "ecommerce";
  EXPECT_FALSE(spec.weight_set().weights().empty());
}

}  // namespace
}  // namespace idseval::campaign
