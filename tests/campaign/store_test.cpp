#include "campaign/store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "campaign/scheduler.hpp"

namespace idseval::campaign {
namespace {

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.name = "store-test";
  spec.products = {products::ProductId::kSentryNid};
  spec.profiles = {"rt_cluster"};
  spec.sensitivities = {0.5};
  spec.replicates = 4;
  return spec;
}

CellResult sample_result(std::size_t index, bool ok) {
  CellResult r;
  r.cell.index = index;
  r.cell.product = products::ProductId::kSentryNid;
  r.cell.profile = "rt_cluster";
  r.cell.sensitivity = 0.5;
  r.cell.replicate = index;
  r.cell.seed = 1000 + index;
  r.ok = ok;
  if (!ok) r.error = "sensor melted \"badly\"\nand fell over";
  r.score_total = 123.456789012345 + static_cast<double>(index);
  r.score_performance = 0.1 * static_cast<double>(index);
  r.fp_percent_of_benign = 1.25;
  r.fn_percent_of_attacks = 33.3333333333333336;
  r.timeliness_sec = 0.25;
  r.wall_sec = 42.0;  // must NOT be persisted
  return r;
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("idseval_store_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "results.jsonl").string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST(CellSerializationTest, RoundTripsExactly) {
  for (const bool ok : {true, false}) {
    const CellResult original = sample_result(3, ok);
    const CellResult copy = deserialize_cell(serialize_cell(original));
    EXPECT_EQ(copy.cell.index, original.cell.index);
    EXPECT_EQ(copy.cell.product, original.cell.product);
    EXPECT_EQ(copy.cell.profile, original.cell.profile);
    EXPECT_DOUBLE_EQ(copy.cell.sensitivity, original.cell.sensitivity);
    EXPECT_EQ(copy.cell.replicate, original.cell.replicate);
    EXPECT_EQ(copy.cell.seed, original.cell.seed);
    EXPECT_EQ(copy.ok, original.ok);
    EXPECT_EQ(copy.error, original.error);
    EXPECT_DOUBLE_EQ(copy.score_total, original.score_total);
    EXPECT_DOUBLE_EQ(copy.fn_percent_of_attacks,
                     original.fn_percent_of_attacks);
    // Serializing the parsed copy reproduces the bytes.
    EXPECT_EQ(serialize_cell(copy), serialize_cell(original));
  }
}

TEST(CellSerializationTest, TelemetrySnapshotRoundTripsExactly) {
  CellResult r = sample_result(2, true);
  r.telemetry.tapped = 1234;
  r.telemetry.filtered = 7;
  r.telemetry.lb_offered = 1200;
  r.telemetry.lb_dropped = 3;
  r.telemetry.sensor_offered = 1197;
  r.telemetry.sensor_dropped = 11;
  r.telemetry.detections = 42;
  r.telemetry.reports = 40;
  r.telemetry.alerts = 17;
  r.telemetry.blocks = 2;
  r.telemetry.lb_wait = {1200, 1.5e-6, 4.0e-6, 7.25e-6};
  r.telemetry.sensor_service = {1197, 2.75e-5, 9.5e-5, 1.25e-4};
  r.telemetry.analyzer_batch = {40, 5.0e-4, 1.5e-3, 2.0e-3};
  r.telemetry.monitor_alert = {17, 0.0125, 0.055, 0.0625};

  const CellResult copy = deserialize_cell(serialize_cell(r));
  EXPECT_EQ(copy.telemetry.tapped, 1234u);
  EXPECT_EQ(copy.telemetry.filtered, 7u);
  EXPECT_EQ(copy.telemetry.lb_offered, 1200u);
  EXPECT_EQ(copy.telemetry.lb_dropped, 3u);
  EXPECT_EQ(copy.telemetry.sensor_offered, 1197u);
  EXPECT_EQ(copy.telemetry.sensor_dropped, 11u);
  EXPECT_EQ(copy.telemetry.detections, 42u);
  EXPECT_EQ(copy.telemetry.reports, 40u);
  EXPECT_EQ(copy.telemetry.alerts, 17u);
  EXPECT_EQ(copy.telemetry.blocks, 2u);
  EXPECT_EQ(copy.telemetry.sensor_service.count, 1197u);
  EXPECT_DOUBLE_EQ(copy.telemetry.sensor_service.mean_sec, 2.75e-5);
  EXPECT_DOUBLE_EQ(copy.telemetry.sensor_service.p99_sec, 9.5e-5);
  EXPECT_DOUBLE_EQ(copy.telemetry.sensor_service.max_sec, 1.25e-4);
  EXPECT_EQ(copy.telemetry.monitor_alert.count, 17u);
  EXPECT_DOUBLE_EQ(copy.telemetry.monitor_alert.max_sec, 0.0625);
  // Re-serializing the parsed copy reproduces the bytes, nested object
  // included.
  EXPECT_EQ(serialize_cell(copy), serialize_cell(r));
}

TEST(CellSerializationTest, RowsWithoutTelemetryLoadWithZeros) {
  // Stores written before the telemetry field existed must still load:
  // strip the field (it is the last one in the row) and expect an
  // all-zero snapshot instead of a parse error.
  const CellResult original = sample_result(1, true);
  const std::string line = serialize_cell(original);
  const std::size_t at = line.find(",\"telemetry\":");
  ASSERT_NE(at, std::string::npos);
  const std::string old_format = line.substr(0, at) + "}";
  const CellResult copy = deserialize_cell(old_format);
  EXPECT_EQ(copy.cell.index, original.cell.index);
  EXPECT_DOUBLE_EQ(copy.score_total, original.score_total);
  EXPECT_EQ(copy.telemetry.tapped, 0u);
  EXPECT_EQ(copy.telemetry.sensor_service.count, 0u);
  EXPECT_TRUE(copy.telemetry.empty());
}

TEST(CellSerializationTest, WallTimeIsNotPersisted) {
  CellResult r = sample_result(0, true);
  r.wall_sec = 1.0;
  const std::string a = serialize_cell(r);
  r.wall_sec = 99.0;
  EXPECT_EQ(serialize_cell(r), a);
  EXPECT_DOUBLE_EQ(deserialize_cell(a).wall_sec, 0.0);
}

TEST(CellSerializationTest, RejectsMalformedLines) {
  EXPECT_THROW(deserialize_cell("not json"), std::invalid_argument);
  EXPECT_THROW(deserialize_cell("{\"type\":\"cell\"}"),
               std::invalid_argument);
  EXPECT_THROW(deserialize_cell("{\"type\":\"manifest\"}"),
               std::invalid_argument);
}

TEST_F(StoreTest, FreshStoreWritesManifestAndRows) {
  const CampaignSpec spec = tiny_spec();
  {
    ResultStore store(path_, spec, /*fresh=*/true);
    store.append(sample_result(0, true));
    store.append(sample_result(1, false));
    EXPECT_TRUE(store.has_ok(0));
    EXPECT_FALSE(store.has_ok(1));  // failed rows stay re-runnable
    EXPECT_FALSE(store.has_ok(2));
    EXPECT_EQ(store.ok_count(), 1u);
    EXPECT_EQ(store.failed_count(), 1u);
  }
  std::ifstream in(path_);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3u);  // manifest + 2 rows
}

TEST_F(StoreTest, ResumeLoadsExistingRows) {
  const CampaignSpec spec = tiny_spec();
  {
    ResultStore store(path_, spec, /*fresh=*/true);
    store.append(sample_result(0, true));
    store.append(sample_result(2, true));
  }
  ResultStore resumed(path_, spec, /*fresh=*/false);
  EXPECT_TRUE(resumed.has_ok(0));
  EXPECT_FALSE(resumed.has_ok(1));
  EXPECT_TRUE(resumed.has_ok(2));
  resumed.append(sample_result(1, true));
  EXPECT_EQ(resumed.ok_count(), 3u);
}

TEST_F(StoreTest, LaterRowsOverrideEarlierFailures) {
  const CampaignSpec spec = tiny_spec();
  {
    ResultStore store(path_, spec, /*fresh=*/true);
    store.append(sample_result(1, false));
    store.append(sample_result(1, true));
  }
  const auto results = ResultStore::load(path_, spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results.at(1).ok);
}

TEST_F(StoreTest, ResumeRefusesDifferentSpec) {
  { ResultStore store(path_, tiny_spec(), /*fresh=*/true); }
  CampaignSpec other = tiny_spec();
  other.base_seed += 1;
  EXPECT_THROW(ResultStore(path_, other, /*fresh=*/false),
               std::invalid_argument);
  EXPECT_THROW(ResultStore::load(path_, other), std::invalid_argument);
}

TEST_F(StoreTest, FreshTruncatesExistingStore) {
  const CampaignSpec spec = tiny_spec();
  {
    ResultStore store(path_, spec, /*fresh=*/true);
    store.append(sample_result(0, true));
  }
  ResultStore store(path_, spec, /*fresh=*/true);
  EXPECT_FALSE(store.has_ok(0));
  EXPECT_EQ(store.ok_count(), 0u);
}

TEST_F(StoreTest, ResumeOnMissingFileStartsEmpty) {
  ResultStore store(path_, tiny_spec(), /*fresh=*/false);
  EXPECT_EQ(store.ok_count(), 0u);
}

TEST_F(StoreTest, LoadRejectsGarbageFile) {
  std::ofstream(path_) << "garbage\n";
  EXPECT_THROW(ResultStore::load(path_, tiny_spec()),
               std::invalid_argument);
}

}  // namespace
}  // namespace idseval::campaign
