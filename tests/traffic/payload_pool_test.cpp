#include "traffic/payload_pool.hpp"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "attack/patterns.hpp"
#include "traffic/payload.hpp"
#include "util/strfmt.hpp"

namespace idseval::traffic {
namespace {

namespace patterns = idseval::attack::patterns;

TEST(PayloadPoolTest, BucketLenQuantizesAndClamps) {
  // Tiny lengths clamp to kMinLen and land in the first granule.
  EXPECT_EQ(PayloadPool::bucket_len(0),
            PayloadPool::bucket_len(PayloadPool::kMinLen));
  EXPECT_EQ(PayloadPool::bucket_len(1), PayloadPool::bucket_len(0));
  EXPECT_EQ(PayloadPool::bucket_len(100000), PayloadPool::kMaxLen);
  // Lengths round to the NEAREST granule boundary (zero-mean quantization
  // error), so everything within half a granule of granule*k shares one
  // bucket.
  const std::size_t g = PayloadPool::kLengthGranularity;
  const std::size_t b1 = PayloadPool::bucket_len(200);
  EXPECT_EQ(b1 % g, 0u);
  EXPECT_EQ(b1, PayloadPool::bucket_len(b1));
  EXPECT_EQ(b1, PayloadPool::bucket_len(b1 - g / 2));
  EXPECT_EQ(b1, PayloadPool::bucket_len(b1 + g / 2 - 1));
  EXPECT_LT(b1, PayloadPool::bucket_len(b1 + g / 2));
  EXPECT_GT(b1, PayloadPool::bucket_len(b1 - g / 2 - 1));
}

TEST(PayloadPoolTest, BackgroundHandoutsMatchKindAndBucket) {
  PayloadPool pool(123, /*variants=*/4);
  const PayloadPool::Ref p = pool.background(PayloadKind::kHttpRequest, 300);
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->empty());
  // HTTP-kind payloads still look like the synthesizer's HTTP content.
  EXPECT_NE(p->find("HTTP"), std::string::npos);
}

TEST(PayloadPoolTest, VariantCycleIsDeterministic) {
  PayloadPool a(999, /*variants=*/4);
  PayloadPool b(999, /*variants=*/4);
  for (int i = 0; i < 10; ++i) {
    const PayloadPool::Ref pa = a.background(PayloadKind::kSmtp, 500);
    const PayloadPool::Ref pb = b.background(PayloadKind::kSmtp, 500);
    ASSERT_NE(pa, nullptr);
    ASSERT_NE(pb, nullptr);
    EXPECT_EQ(*pa, *pb) << "draw " << i;
  }
}

TEST(PayloadPoolTest, CycleRepeatsAfterVariantsDraws) {
  PayloadPool pool(7, /*variants=*/3);
  std::vector<std::string> first_cycle;
  for (int i = 0; i < 3; ++i) {
    first_cycle.push_back(*pool.background(PayloadKind::kRandom, 200));
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(*pool.background(PayloadKind::kRandom, 200), first_cycle[i]);
  }
  // After the first cycle everything is a cache hit.
  EXPECT_EQ(pool.misses(), 3u);
  EXPECT_EQ(pool.hits(), 3u);
  EXPECT_EQ(pool.interned_strings(), 3u);
}

TEST(PayloadPoolTest, DifferentSeedsGiveDifferentContent) {
  PayloadPool a(1, /*variants=*/2);
  PayloadPool b(2, /*variants=*/2);
  EXPECT_NE(*a.background(PayloadKind::kRandom, 400),
            *b.background(PayloadKind::kRandom, 400));
}

TEST(PayloadPoolTest, AttackFamilyPreservesSignatureBytes) {
  PayloadPool pool(42, /*variants=*/8);
  // Every variant a signature-bearing builder produces must carry the
  // pattern — this is the "pattern-rule hits keep firing" guarantee.
  for (int i = 0; i < 20; ++i) {
    const PayloadPool::Ref p = pool.attack("web.exploit", [](util::Rng& rng) {
      return util::cat("GET ", patterns::kDirTraversal, " HTTP/1.0 x=",
                       rng.uniform_u64(0, 1000), "\r\n\r\n");
    });
    ASSERT_NE(p, nullptr);
    EXPECT_NE(p->find(patterns::kDirTraversal), std::string::npos);
  }
  // 8 variants built once each, then cycled.
  EXPECT_EQ(pool.misses(), 8u);
  EXPECT_EQ(pool.hits(), 12u);
}

TEST(PayloadPoolTest, AttackFamiliesAreIndependent) {
  PayloadPool pool(5, /*variants=*/2);
  const PayloadPool::Ref a =
      pool.attack("fam.a", [](util::Rng&) { return std::string("AAAA"); });
  const PayloadPool::Ref b =
      pool.attack("fam.b", [](util::Rng&) { return std::string("BBBB"); });
  EXPECT_EQ(*a, "AAAA");
  EXPECT_EQ(*b, "BBBB");
}

TEST(PayloadPoolTest, MultiFamilyKeepsPiecesCoherent) {
  PayloadPool pool(77, /*variants=*/4);
  auto build = [](util::Rng& rng) {
    const std::string whole =
        util::cat("prefix-", rng.uniform_u64(0, 1000000), "-suffix");
    return std::vector<std::string>{whole.substr(0, whole.size() / 2),
                                    whole.substr(whole.size() / 2)};
  };
  for (int i = 0; i < 8; ++i) {
    const PayloadPool::Refs& pieces = pool.attack_family("frags", build);
    ASSERT_EQ(pieces.size(), 2u);
    const std::string joined = *pieces[0] + *pieces[1];
    EXPECT_EQ(joined.substr(0, 7), "prefix-");
    EXPECT_EQ(joined.substr(joined.size() - 7), "-suffix");
  }
}

TEST(PayloadPoolTest, MultiFamilyCycleIsDeterministic) {
  auto build = [](util::Rng& rng) {
    return std::vector<std::string>{
        util::cat("x", rng.uniform_u64(0, 1 << 30)),
        util::cat("y", rng.uniform_u64(0, 1 << 30))};
  };
  PayloadPool a(31337, /*variants=*/3);
  PayloadPool b(31337, /*variants=*/3);
  for (int i = 0; i < 7; ++i) {
    const PayloadPool::Refs& pa = a.attack_family("t", build);
    const PayloadPool::Refs pb_copy = b.attack_family("t", build);
    ASSERT_EQ(pa.size(), pb_copy.size());
    for (std::size_t j = 0; j < pa.size(); ++j) {
      EXPECT_EQ(*pa[j], *pb_copy[j]);
    }
  }
}

TEST(PayloadPoolTest, GrowthDoublesAfterFullCycleUpToLimit) {
  PayloadPool pool(21, /*variants=*/2);
  pool.enable_growth(PayloadKind::kCanFrame, 8);
  std::set<std::string> distinct;
  // 2 base slots, doubled to 4 after the first full cycle, then to 8,
  // then the cycle is fixed: 16 draws see exactly 8 distinct payloads.
  for (int i = 0; i < 16; ++i) {
    distinct.insert(*pool.background(PayloadKind::kCanFrame, 40));
  }
  EXPECT_EQ(distinct.size(), 8u);
  EXPECT_EQ(pool.grown_variants(), 6u);  // 2→4 adds 2, 4→8 adds 4
  // The cycle stays capped: more draws mint nothing new.
  for (int i = 0; i < 16; ++i) {
    distinct.insert(*pool.background(PayloadKind::kCanFrame, 40));
  }
  EXPECT_EQ(distinct.size(), 8u);
  EXPECT_EQ(pool.grown_variants(), 6u);
}

TEST(PayloadPoolTest, GrownContentIsIndependentOfGrowthHistory) {
  // Slot content depends only on (pool seed, family, slot index), so a
  // pool that grew 2→8 hands out exactly the payloads a fixed 8-variant
  // pool would — growth changes the universe's size, never its content.
  PayloadPool grown(55, /*variants=*/2);
  grown.enable_growth(PayloadKind::kIcsControl, 8);
  PayloadPool fixed(55, /*variants=*/8);
  std::set<std::string> grown_set;
  std::set<std::string> fixed_set;
  for (int i = 0; i < 24; ++i) {
    grown_set.insert(*grown.background(PayloadKind::kIcsControl, 64));
    fixed_set.insert(*fixed.background(PayloadKind::kIcsControl, 64));
  }
  EXPECT_EQ(grown_set, fixed_set);
}

TEST(PayloadPoolTest, KindsWithoutGrowthPolicyKeepTheFixedCycle) {
  PayloadPool pool(9, /*variants=*/3);
  pool.enable_growth(PayloadKind::kCanFrame, 8);
  std::set<std::string> distinct;
  for (int i = 0; i < 12; ++i) {
    distinct.insert(*pool.background(PayloadKind::kHttpRequest, 300));
  }
  EXPECT_EQ(distinct.size(), 3u);
  EXPECT_EQ(pool.grown_variants(), 0u);
}

TEST(PayloadPoolTest, GrowthBelowBaseCycleIsIgnored) {
  PayloadPool pool(13, /*variants=*/4);
  pool.enable_growth(PayloadKind::kCanFrame, 4);  // not > base: no-op
  EXPECT_EQ(pool.growth_headroom(), 0u);
  std::set<std::string> distinct;
  for (int i = 0; i < 12; ++i) {
    distinct.insert(*pool.background(PayloadKind::kCanFrame, 40));
  }
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(PayloadPoolTest, GrowthHeadroomSumsOverEnabledKinds) {
  PayloadPool pool(1, /*variants=*/32);
  EXPECT_EQ(pool.growth_headroom(), 0u);
  pool.enable_growth(PayloadKind::kIcsControl,
                     PayloadPool::kGrowthMaxVariants);
  pool.enable_growth(PayloadKind::kCanFrame,
                     PayloadPool::kGrowthMaxVariants);
  EXPECT_EQ(pool.growth_headroom(),
            2 * (PayloadPool::kGrowthMaxVariants - 32) *
                PayloadPool::kGrownBucketsPerKind);
}

TEST(PayloadPoolTest, SteadyStateHandsOutSharedReferences) {
  PayloadPool pool(11, /*variants=*/2);
  const PayloadPool::Ref first = pool.background(PayloadKind::kTelnet, 100);
  pool.background(PayloadKind::kTelnet, 100);  // variant 1
  const PayloadPool::Ref again = pool.background(PayloadKind::kTelnet, 100);
  // Cycle wrapped: same object, not an equal copy.
  EXPECT_EQ(first.get(), again.get());
  EXPECT_GT(pool.interned_bytes(), 0u);
}

}  // namespace
}  // namespace idseval::traffic
