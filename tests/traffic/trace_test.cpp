#include "traffic/trace.hpp"

#include <gtest/gtest.h>

#include "traffic/payload.hpp"
#include "util/rng.hpp"

namespace idseval::traffic {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::SimTime;
using netsim::TcpFlags;

Packet sample_packet(std::uint64_t flow, std::string payload,
                     TcpFlags flags = {}) {
  FiveTuple t;
  t.src_ip = Ipv4(10, 0, 0, 1);
  t.dst_ip = Ipv4(10, 0, 0, 2);
  t.src_port = 4000;
  t.dst_port = 80;
  Packet p = netsim::make_packet(1, flow, SimTime::zero(), t,
                                 std::move(payload), flags);
  p.seq = 3;
  return p;
}

TEST(TraceTest, AppendAbsoluteRebasesToFirstPacket) {
  Trace trace;
  trace.append_absolute(SimTime::from_sec(100), sample_packet(1, "a"));
  trace.append_absolute(SimTime::from_sec(101), sample_packet(1, "b"));
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.entries()[0].offset, SimTime::zero());
  EXPECT_EQ(trace.entries()[1].offset, SimTime::from_sec(1));
  EXPECT_EQ(trace.duration(), SimTime::from_sec(1));
}

TEST(TraceTest, SerializeDeserializeRoundTrip) {
  Trace trace;
  TcpFlags syn;
  syn.syn = true;
  trace.append(SimTime::zero(), sample_packet(7, "", syn));
  trace.append(SimTime::from_ms(3),
               sample_packet(7, "GET /index.html HTTP/1.0\r\n\r\n"));
  // Binary-ish payload with newline and non-ASCII survives hex encoding.
  trace.append(SimTime::from_ms(9),
               sample_packet(8, std::string("\x00\x90\xff\nline", 8)));

  const Trace copy = Trace::deserialize(trace.serialize());
  ASSERT_EQ(copy.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& a = trace.entries()[i];
    const auto& b = copy.entries()[i];
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.packet.flow_id, b.packet.flow_id);
    EXPECT_EQ(a.packet.tuple, b.packet.tuple);
    EXPECT_EQ(a.packet.flags, b.packet.flags);
    EXPECT_EQ(a.packet.seq, b.packet.seq);
    EXPECT_EQ(a.packet.payload_view(), b.packet.payload_view());
  }
}

TEST(TraceTest, DeserializeRejectsBadHeader) {
  EXPECT_THROW(Trace::deserialize("not a trace\n"), std::invalid_argument);
}

TEST(TraceTest, DeserializeRejectsMalformedLine) {
  EXPECT_THROW(Trace::deserialize("idseval-trace v1\ngarbage line\n"),
               std::invalid_argument);
}

TEST(TraceTest, ReplayReinjectsPackets) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  net.add_host("a", Ipv4(10, 0, 0, 1));
  auto* b = net.add_host("b", Ipv4(10, 0, 0, 2));
  int received = 0;
  b->add_receiver([&](const Packet&) { ++received; });

  Trace trace;
  trace.append(SimTime::zero(), sample_packet(1, "one"));
  trace.append(SimTime::from_ms(10), sample_packet(1, "two"));
  const auto mapping =
      trace.replay(sim, net, SimTime::from_sec(1), /*time_scale=*/1.0);
  sim.run_until();

  EXPECT_EQ(received, 2);
  ASSERT_EQ(mapping.size(), 1u);  // one distinct flow remapped
  EXPECT_EQ(mapping[0].first, 1u);
  EXPECT_GT(mapping[0].second, 0u);
}

TEST(TraceTest, ReplayTimeScaleCompresses) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  net.add_host("a", Ipv4(10, 0, 0, 1));
  auto* b = net.add_host("b", Ipv4(10, 0, 0, 2));
  std::vector<double> arrivals;
  b->add_receiver([&](const Packet&) { arrivals.push_back(sim.now().ms()); });

  Trace trace;
  trace.append(SimTime::zero(), sample_packet(1, "one"));
  trace.append(SimTime::from_ms(100), sample_packet(1, "two"));
  trace.replay(sim, net, SimTime::zero(), /*time_scale=*/0.1);
  sim.run_until();

  ASSERT_EQ(arrivals.size(), 2u);
  // 100 ms gap compressed to ~10 ms (plus constant network transit).
  EXPECT_NEAR(arrivals[1] - arrivals[0], 10.0, 1.0);
}

TEST(TraceTest, ReplayMapsDistinctFlowsDistinctly) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  net.add_host("a", Ipv4(10, 0, 0, 1));
  net.add_host("b", Ipv4(10, 0, 0, 2));
  Trace trace;
  trace.append(SimTime::zero(), sample_packet(1, "x"));
  trace.append(SimTime::from_ms(1), sample_packet(2, "y"));
  const auto mapping = trace.replay(sim, net, SimTime::zero());
  ASSERT_EQ(mapping.size(), 2u);
  EXPECT_NE(mapping[0].second, mapping[1].second);
}

TEST(TraceTest, CapturedFromMirrorThenReplayed) {
  // Record via a switch mirror, then replay the canned data elsewhere —
  // the paper's recommended FN-measurement workflow (§4).
  netsim::Simulator sim;
  netsim::Network net(sim);
  net.add_host("a", Ipv4(10, 0, 0, 1));
  net.add_host("b", Ipv4(10, 0, 0, 2));
  Trace trace;
  net.lan_switch().add_mirror([&](const Packet& p) {
    trace.append_absolute(sim.now(), p);
  });
  net.send(sample_packet(5, "captured"));
  sim.run_until();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.entries()[0].packet.payload_view(), "captured");
}

}  // namespace
}  // namespace idseval::traffic
