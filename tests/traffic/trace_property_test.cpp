// Parameterized fuzz of the trace serialization: randomized packets of
// every payload kind (including attack payloads with raw binary content)
// must round-trip byte-exactly, regardless of seed. Canned corpora are
// long-lived artifacts; a lossy format would silently corrupt ground
// truth.
#include <gtest/gtest.h>

#include "attack/emitter.hpp"
#include "traffic/payload.hpp"
#include "traffic/trace.hpp"
#include "util/rng.hpp"

namespace idseval::traffic {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::SimTime;

class TraceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceFuzz, RandomizedRoundTrip) {
  util::Rng rng(GetParam());
  Trace trace;
  const int n = 50 + static_cast<int>(rng.uniform_u64(0, 100));
  for (int i = 0; i < n; ++i) {
    FiveTuple t;
    t.src_ip = Ipv4(static_cast<std::uint32_t>(rng.next()));
    t.dst_ip = Ipv4(static_cast<std::uint32_t>(rng.next()));
    t.src_port = static_cast<std::uint16_t>(rng.uniform_u64(0, 65535));
    t.dst_port = static_cast<std::uint16_t>(rng.uniform_u64(0, 65535));
    t.proto = rng.chance(0.5) ? netsim::Protocol::kTcp
                              : netsim::Protocol::kUdp;

    std::string payload;
    if (rng.chance(0.2)) {
      // Raw binary payload, all byte values possible.
      payload.resize(rng.uniform_u64(0, 300));
      for (auto& ch : payload) {
        ch = static_cast<char>(rng.uniform_u64(0, 255));
      }
    } else {
      const auto kind = static_cast<PayloadKind>(rng.index(8));
      payload = synthesize(kind, 32 + rng.index(400), rng);
    }

    netsim::TcpFlags flags;
    flags.syn = rng.chance(0.3);
    flags.ack = rng.chance(0.5);
    flags.fin = rng.chance(0.2);
    flags.rst = rng.chance(0.1);

    Packet p = netsim::make_packet(static_cast<std::uint64_t>(i),
                                   rng.uniform_u64(1, 20), SimTime::zero(),
                                   t, std::move(payload), flags);
    p.seq = static_cast<std::uint32_t>(rng.next());
    trace.append(SimTime::from_ns(static_cast<std::int64_t>(
                     rng.uniform_u64(0, 60'000'000'000ULL))),
                 p);
  }

  const Trace copy = Trace::deserialize(trace.serialize());
  ASSERT_EQ(copy.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& a = trace.entries()[i];
    const auto& b = copy.entries()[i];
    ASSERT_EQ(a.offset, b.offset) << "entry " << i;
    ASSERT_EQ(a.packet.flow_id, b.packet.flow_id);
    ASSERT_EQ(a.packet.tuple, b.packet.tuple);
    ASSERT_EQ(a.packet.flags, b.packet.flags);
    ASSERT_EQ(a.packet.seq, b.packet.seq);
    ASSERT_EQ(a.packet.payload_view(), b.packet.payload_view());
  }
  // Double round-trip is a fixed point.
  EXPECT_EQ(copy.serialize(), trace.serialize());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(TraceFuzz, AttackCorpusRoundTrips) {
  // Every attack kind's real emitted packets survive serialization.
  netsim::Simulator sim;
  netsim::Network net(sim);
  net.add_host("v", Ipv4(10, 0, 0, 2));
  net.add_host("i", Ipv4(10, 0, 0, 3));
  net.add_external_host("a", Ipv4(198, 51, 100, 1));
  TransactionLedger ledger;
  attack::AttackEmitter emitter(sim, net, ledger, 5);
  Trace trace;
  net.lan_switch().add_mirror([&](const Packet& p) {
    trace.append_absolute(sim.now(), p);
  });
  SimTime when = SimTime::from_ms(1);
  for (const auto& t : attack::all_attack_traits()) {
    emitter.launch(t.kind,
                   t.insider ? Ipv4(10, 0, 0, 3) : Ipv4(198, 51, 100, 1),
                   Ipv4(10, 0, 0, 2), when);
    when += SimTime::from_sec(1);
  }
  sim.run_until();
  ASSERT_GT(trace.size(), 100u);
  const Trace copy = Trace::deserialize(trace.serialize());
  EXPECT_EQ(copy.serialize(), trace.serialize());
}

}  // namespace
}  // namespace idseval::traffic
