// Statistical properties of the traffic generator, parameterized over
// the built-in environment profiles: protocol mix honored, burstiness
// visible in arrival variance, payload regularity matching the profile's
// jitter. These are the properties the §4 lessons depend on — a profile
// that silently generated the wrong mix would invalidate every
// environment-specific measurement downstream.
#include <gtest/gtest.h>

#include <map>

#include "ids/anomaly_engine.hpp"
#include "traffic/flowgen.hpp"
#include "traffic/profile.hpp"
#include "util/stats.hpp"

namespace idseval::traffic {
namespace {

using netsim::Ipv4;
using netsim::Packet;
using netsim::SimTime;

struct Capture {
  std::vector<double> arrival_times_sec;
  std::map<std::uint16_t, std::size_t> flows_by_port;
  util::RunningStats payload_bytes;
  std::map<std::uint64_t, bool> seen_flow;
};

Capture run_profile(const EnvironmentProfile& profile, std::uint64_t seed,
                    double seconds = 20.0) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  std::vector<Ipv4> internal;
  for (int i = 1; i <= 6; ++i) {
    const Ipv4 addr(10, 0, 0, static_cast<std::uint8_t>(i));
    net.add_host("h" + std::to_string(i), addr);
    internal.push_back(addr);
  }
  const Ipv4 ext(198, 51, 100, 1);
  net.add_external_host("ext", ext);

  Capture capture;
  net.lan_switch().add_mirror([&](const Packet& p) {
    if (!capture.seen_flow[p.flow_id]) {
      capture.seen_flow[p.flow_id] = true;
      capture.arrival_times_sec.push_back(sim.now().sec());
      ++capture.flows_by_port[p.tuple.dst_port];
    }
    if (p.payload_bytes() > 0) {
      capture.payload_bytes.add(static_cast<double>(p.payload_bytes()));
    }
  });

  TransactionLedger ledger;
  FlowGenerator gen(sim, net, &ledger, profile, seed);
  gen.set_internal_hosts(internal);
  gen.set_external_hosts({ext});
  gen.start(SimTime::from_sec(seconds));
  sim.run_until(SimTime::from_sec(seconds + 2.0));
  return capture;
}

class ProfileProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfileProperty, ProtocolMixHonored) {
  const EnvironmentProfile profile = profile_by_name(GetParam());
  const Capture capture = run_profile(profile, 77);
  ASSERT_GT(capture.seen_flow.size(), 100u);

  double total_weight = 0.0;
  for (const auto& share : profile.mix) total_weight += share.weight;
  const double total_flows =
      static_cast<double>(capture.seen_flow.size());

  // Aggregate expected share per destination port (several mix entries
  // may target one port).
  std::map<std::uint16_t, double> expected;
  for (const auto& share : profile.mix) {
    expected[share.dst_port] += share.weight / total_weight;
  }
  for (const auto& [port, exp_share] : expected) {
    const auto it = capture.flows_by_port.find(port);
    const double got =
        it == capture.flows_by_port.end()
            ? 0.0
            : static_cast<double>(it->second) / total_flows;
    EXPECT_NEAR(got, exp_share, 0.08)
        << GetParam() << " port " << port;
  }
}

TEST_P(ProfileProperty, PayloadSizesTrackProfileMean) {
  const EnvironmentProfile profile = profile_by_name(GetParam());
  const Capture capture = run_profile(profile, 11);
  ASSERT_GT(capture.payload_bytes.count(), 500u);
  // Means are clamped/truncated by synthesis, so allow a wide band.
  EXPECT_GT(capture.payload_bytes.mean(), profile.mean_payload_bytes * 0.4)
      << GetParam();
  EXPECT_LT(capture.payload_bytes.mean(), profile.mean_payload_bytes * 2.5)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileProperty,
                         ::testing::Values("rt_cluster", "ecommerce",
                                           "office", "random_flood",
                                           "megaflow", "ics", "canbus"));

TEST(ProfilePropertyTest, IcsProfilePinsControlLoopShape) {
  const EnvironmentProfile ics = profile_by_name("ics");
  EXPECT_EQ(ics.name, "ics");
  // Periodic control loops: no burst state, near-constant frame sizes,
  // essentially no external traffic. These are the properties the ics
  // kill-chain preset and the anomaly-baseline experiments assume.
  EXPECT_DOUBLE_EQ(ics.burst_fraction, 0.0);
  EXPECT_LE(ics.payload_jitter, 0.1);
  EXPECT_LE(ics.external_fraction, 0.05);
  // Modbus-style control traffic dominates the mix.
  double control_weight = 0.0;
  double total_weight = 0.0;
  for (const auto& share : ics.mix) {
    total_weight += share.weight;
    if (share.dst_port == netsim::ports::kModbus) {
      control_weight += share.weight;
    }
  }
  EXPECT_GT(control_weight / total_weight, 0.8);
}

TEST(ProfilePropertyTest, CanbusProfilePinsTinyFixedFrames) {
  const EnvironmentProfile can = profile_by_name("canbus");
  EXPECT_EQ(can.name, "canbus");
  // A bridged CAN segment: high frame rate, tiny fixed-size frames,
  // nothing external, zero payload-size variance.
  EXPECT_GE(can.flows_per_sec, 200.0);
  EXPECT_LE(can.mean_payload_bytes, 64.0);
  EXPECT_DOUBLE_EQ(can.payload_jitter, 0.0);
  EXPECT_DOUBLE_EQ(can.external_fraction, 0.0);
  double frame_weight = 0.0;
  double total_weight = 0.0;
  for (const auto& share : can.mix) {
    total_weight += share.weight;
    if (share.dst_port == netsim::ports::kCanBus) {
      frame_weight += share.weight;
    }
  }
  EXPECT_GT(frame_weight / total_weight, 0.9);
}

TEST(ProfilePropertyTest, CanbusFramesHaveNoSizeDispersion) {
  // Zero jitter plus a fixed frame family must show up on the wire as a
  // much tighter size distribution than any enterprise profile.
  const Capture can = run_profile(canbus_profile(), 3);
  const Capture office = run_profile(office_profile(), 3);
  const double can_cv =
      can.payload_bytes.stddev() / can.payload_bytes.mean();
  const double office_cv =
      office.payload_bytes.stddev() / office.payload_bytes.mean();
  EXPECT_LT(can_cv, office_cv * 0.5);
}

TEST(ProfilePropertyTest, BurstyProfileHasHigherArrivalVariance) {
  // Compare inter-arrival dispersion of the bursty e-commerce profile
  // with a de-burst variant of itself: MMPP must show over-dispersion.
  EnvironmentProfile bursty = ecommerce_profile();
  EnvironmentProfile smooth = bursty;
  smooth.burst_fraction = 0.0;
  smooth.burst_factor = 1.0;

  auto dispersion = [](const Capture& c) {
    util::RunningStats gaps;
    for (std::size_t i = 1; i < c.arrival_times_sec.size(); ++i) {
      gaps.add(c.arrival_times_sec[i] - c.arrival_times_sec[i - 1]);
    }
    // Coefficient of variation squared: 1 for Poisson, >1 for MMPP.
    const double mean = gaps.mean();
    return gaps.variance() / (mean * mean);
  };

  const double bursty_cv2 = dispersion(run_profile(bursty, 5, 40.0));
  const double smooth_cv2 = dispersion(run_profile(smooth, 5, 40.0));
  EXPECT_GT(bursty_cv2, smooth_cv2 * 1.2);
  EXPECT_NEAR(smooth_cv2, 1.0, 0.35);  // pure Poisson
}

TEST(ProfilePropertyTest, ClusterPayloadsAreLowEntropyAndRegular) {
  // The §2.1 maxim: the constrained cluster environment has tight,
  // learnable payload structure; the random flood is the opposite.
  const Capture cluster = run_profile(rt_cluster_profile(), 3);
  const Capture flood = run_profile(random_flood_profile(), 3);
  // Relative payload-size dispersion: cluster much tighter.
  const double cluster_cv =
      cluster.payload_bytes.stddev() / cluster.payload_bytes.mean();
  const double flood_cv =
      flood.payload_bytes.stddev() / flood.payload_bytes.mean();
  EXPECT_LT(cluster_cv, flood_cv);
}

}  // namespace
}  // namespace idseval::traffic
