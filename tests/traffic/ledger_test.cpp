#include "traffic/ledger.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace idseval::traffic {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::SimTime;

FiveTuple tuple() {
  FiveTuple t;
  t.src_ip = Ipv4(10, 0, 0, 1);
  t.dst_ip = Ipv4(10, 0, 0, 2);
  t.dst_port = 80;
  return t;
}

TEST(LedgerTest, BeginCreatesTransaction) {
  TransactionLedger ledger;
  const Transaction& t =
      ledger.begin(1, tuple(), SimTime::from_ms(5), false);
  EXPECT_EQ(t.flow_id, 1u);
  EXPECT_FALSE(t.is_attack);
  EXPECT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger.benign_count(), 1u);
  EXPECT_EQ(ledger.attack_count(), 0u);
}

TEST(LedgerTest, DuplicateFlowIdThrows) {
  TransactionLedger ledger;
  ledger.begin(1, tuple(), SimTime::zero());
  EXPECT_THROW(ledger.begin(1, tuple(), SimTime::zero()),
               std::invalid_argument);
}

TEST(LedgerTest, TouchAccumulates) {
  TransactionLedger ledger;
  ledger.begin(1, tuple(), SimTime::zero());
  ledger.touch(1, SimTime::from_ms(1), 100);
  ledger.touch(1, SimTime::from_ms(5), 200);
  const Transaction* t = ledger.find(1);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->packets, 2u);
  EXPECT_EQ(t->bytes, 300u);
  EXPECT_EQ(t->end, SimTime::from_ms(5));
}

TEST(LedgerTest, TouchUnknownFlowIgnored) {
  TransactionLedger ledger;
  ledger.touch(42, SimTime::zero(), 10);  // must not crash
  EXPECT_EQ(ledger.find(42), nullptr);
}

TEST(LedgerTest, EndNeverMovesBackward) {
  TransactionLedger ledger;
  ledger.begin(1, tuple(), SimTime::from_ms(10));
  ledger.touch(1, SimTime::from_ms(20), 1);
  ledger.touch(1, SimTime::from_ms(15), 1);  // out of order
  EXPECT_EQ(ledger.find(1)->end, SimTime::from_ms(20));
}

TEST(LedgerTest, AttackLabeling) {
  TransactionLedger ledger;
  ledger.begin(1, tuple(), SimTime::zero(), /*is_attack=*/true, 3);
  ledger.begin(2, tuple(), SimTime::zero(), false);
  EXPECT_TRUE(ledger.is_attack(1));
  EXPECT_FALSE(ledger.is_attack(2));
  EXPECT_FALSE(ledger.is_attack(99));
  EXPECT_EQ(ledger.attack_count(), 1u);
  EXPECT_EQ(ledger.find(1)->attack_kind, 3);
  EXPECT_EQ(ledger.find(2)->attack_kind, -1);
}

TEST(LedgerTest, AllPreservesInsertionOrder) {
  TransactionLedger ledger;
  for (std::uint64_t id = 10; id > 0; --id) {
    ledger.begin(id, tuple(), SimTime::zero());
  }
  const auto all = ledger.all();
  ASSERT_EQ(all.size(), 10u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i]->flow_id, 10 - i);
  }
}

TEST(LedgerTest, AttacksFiltersOnlyAttacks) {
  TransactionLedger ledger;
  ledger.begin(1, tuple(), SimTime::zero(), true, 0);
  ledger.begin(2, tuple(), SimTime::zero(), false);
  ledger.begin(3, tuple(), SimTime::zero(), true, 1);
  const auto attacks = ledger.attacks();
  ASSERT_EQ(attacks.size(), 2u);
  EXPECT_EQ(attacks[0]->flow_id, 1u);
  EXPECT_EQ(attacks[1]->flow_id, 3u);
}

}  // namespace
}  // namespace idseval::traffic
