#include "traffic/flowgen.hpp"

#include <gtest/gtest.h>

#include <map>

#include "traffic/profile.hpp"

namespace idseval::traffic {
namespace {

using netsim::Ipv4;
using netsim::SimTime;

class FlowGenTest : public ::testing::Test {
 protected:
  FlowGenTest() : net_(sim_) {
    for (int i = 1; i <= 4; ++i) {
      const Ipv4 addr(10, 0, 0, static_cast<std::uint8_t>(i));
      net_.add_host("h" + std::to_string(i), addr);
      internal_.push_back(addr);
    }
    const Ipv4 ext(198, 51, 100, 1);
    net_.add_external_host("ext", ext);
    external_.push_back(ext);
  }

  FlowGenerator make(const EnvironmentProfile& profile,
                     std::uint64_t seed = 7) {
    FlowGenerator gen(sim_, net_, &ledger_, profile, seed);
    gen.set_internal_hosts(internal_);
    gen.set_external_hosts(external_);
    return gen;
  }

  netsim::Simulator sim_;
  netsim::Network net_;
  TransactionLedger ledger_;
  std::vector<Ipv4> internal_;
  std::vector<Ipv4> external_;
};

TEST_F(FlowGenTest, GeneratesApproximateArrivalRate) {
  auto gen = make(office_profile());
  gen.start(SimTime::from_sec(10));
  sim_.run_until(SimTime::from_sec(12));
  // office profile: 40 flows/s nominal over 10 s.
  EXPECT_NEAR(static_cast<double>(gen.stats().flows_started), 400.0, 120.0);
  EXPECT_GT(gen.stats().packets_emitted, gen.stats().flows_started);
}

TEST_F(FlowGenTest, RateScaleScalesArrivals) {
  auto base = make(office_profile(), 3);
  base.start(SimTime::from_sec(10));
  sim_.run_until(SimTime::from_sec(12));
  const auto base_flows = base.stats().flows_started;

  netsim::Simulator sim2;
  netsim::Network net2(sim2);
  std::vector<Ipv4> hosts;
  for (int i = 1; i <= 4; ++i) {
    const Ipv4 addr(10, 0, 0, static_cast<std::uint8_t>(i));
    net2.add_host("h" + std::to_string(i), addr);
    hosts.push_back(addr);
  }
  TransactionLedger ledger2;
  FlowGenerator scaled(sim2, net2, &ledger2, office_profile(), 3);
  scaled.set_internal_hosts(hosts);
  scaled.set_rate_scale(3.0);
  scaled.start(SimTime::from_sec(10));
  sim2.run_until(SimTime::from_sec(12));

  // Bursty arrivals make exact ratios noisy; check the scaling factor is
  // clearly ~3x and not ~1x.
  const double ratio = static_cast<double>(scaled.stats().flows_started) /
                       static_cast<double>(base_flows);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.2);
}

TEST_F(FlowGenTest, DeterministicForSameSeed) {
  auto a = make(rt_cluster_profile(), 42);
  a.start(SimTime::from_sec(3));
  sim_.run_until(SimTime::from_sec(4));

  netsim::Simulator sim2;
  netsim::Network net2(sim2);
  std::vector<Ipv4> hosts;
  for (int i = 1; i <= 4; ++i) {
    const Ipv4 addr(10, 0, 0, static_cast<std::uint8_t>(i));
    net2.add_host("h" + std::to_string(i), addr);
    hosts.push_back(addr);
  }
  const Ipv4 ext(198, 51, 100, 1);
  net2.add_external_host("ext", ext);
  TransactionLedger ledger2;
  FlowGenerator b(sim2, net2, &ledger2, rt_cluster_profile(), 42);
  b.set_internal_hosts(hosts);
  b.set_external_hosts({ext});
  b.start(SimTime::from_sec(3));
  sim2.run_until(SimTime::from_sec(4));

  EXPECT_EQ(a.stats().flows_started, b.stats().flows_started);
  EXPECT_EQ(a.stats().packets_emitted, b.stats().packets_emitted);
  EXPECT_EQ(a.stats().bytes_emitted, b.stats().bytes_emitted);
}

TEST_F(FlowGenTest, LedgerMatchesEmissions) {
  auto gen = make(office_profile());
  gen.start(SimTime::from_sec(5));
  sim_.run_until(SimTime::from_sec(7));
  EXPECT_EQ(ledger_.size(), gen.stats().flows_started);
  EXPECT_EQ(ledger_.attack_count(), 0u);
  std::uint64_t ledger_packets = 0;
  for (const Transaction* t : ledger_.all()) ledger_packets += t->packets;
  EXPECT_EQ(ledger_packets, gen.stats().packets_emitted);
}

TEST_F(FlowGenTest, DestinationsAreInternal) {
  auto gen = make(ecommerce_profile());
  gen.start(SimTime::from_sec(3));
  sim_.run_until(SimTime::from_sec(4));
  for (const Transaction* t : ledger_.all()) {
    EXPECT_TRUE(t->tuple.dst_ip.in_subnet(Ipv4(10, 0, 0, 0), 8))
        << t->tuple.to_string();
  }
}

TEST_F(FlowGenTest, ExternalFractionRoughlyHonored) {
  auto gen = make(ecommerce_profile());  // external_fraction = 0.85
  gen.start(SimTime::from_sec(10));
  sim_.run_until(SimTime::from_sec(12));
  std::size_t external_flows = 0;
  for (const Transaction* t : ledger_.all()) {
    if (!t->tuple.src_ip.in_subnet(Ipv4(10, 0, 0, 0), 8)) ++external_flows;
  }
  const double fraction = static_cast<double>(external_flows) /
                          static_cast<double>(ledger_.size());
  EXPECT_NEAR(fraction, 0.85, 0.08);
}

TEST_F(FlowGenTest, ZipfSkewConcentratesDestinations) {
  EnvironmentProfile profile = office_profile();
  profile.dest_zipf_s = 1.5;
  auto gen = make(profile);
  gen.start(SimTime::from_sec(10));
  sim_.run_until(SimTime::from_sec(12));
  std::map<std::uint32_t, int> counts;
  for (const Transaction* t : ledger_.all()) {
    ++counts[t->tuple.dst_ip.value()];
  }
  const int first = counts[Ipv4(10, 0, 0, 1).value()];
  const int last = counts[Ipv4(10, 0, 0, 4).value()];
  EXPECT_GT(first, 2 * last);
}

TEST_F(FlowGenTest, TcpFlowsCarrySynAndFin) {
  // Collect packets at a host and check flag discipline per flow.
  std::map<std::uint64_t, std::vector<netsim::TcpFlags>> flows;
  for (const Ipv4 addr : internal_) {
    net_.find_host(addr)->add_receiver([&](const netsim::Packet& p) {
      if (p.tuple.proto == netsim::Protocol::kTcp) {
        flows[p.flow_id].push_back(p.flags);
      }
    });
  }
  auto gen = make(office_profile());
  gen.start(SimTime::from_sec(3));
  sim_.run_until(SimTime::from_sec(6));
  ASSERT_FALSE(flows.empty());
  for (const auto& [flow, flags] : flows) {
    EXPECT_TRUE(flags.front().syn) << "flow " << flow;
    EXPECT_TRUE(flags.back().fin || flags.size() == 1) << "flow " << flow;
  }
}

TEST_F(FlowGenTest, StartWithoutHostsThrows) {
  FlowGenerator gen(sim_, net_, &ledger_, office_profile(), 1);
  EXPECT_THROW(gen.start(SimTime::from_sec(1)), std::logic_error);
}

TEST_F(FlowGenTest, EmptyMixThrows) {
  EnvironmentProfile profile = office_profile();
  profile.mix.clear();
  EXPECT_THROW(FlowGenerator(sim_, net_, &ledger_, profile, 1),
               std::invalid_argument);
}

TEST(ProfileTest, BuiltinsResolvable) {
  EXPECT_EQ(profile_by_name("rt_cluster").name, "rt_cluster");
  EXPECT_EQ(profile_by_name("ecommerce").name, "ecommerce");
  EXPECT_EQ(profile_by_name("office").name, "office");
  EXPECT_EQ(profile_by_name("random_flood").name, "random_flood");
  EXPECT_THROW(profile_by_name("nope"), std::invalid_argument);
}

TEST(ProfileTest, MixWeightsArePositive) {
  for (const auto& name :
       {"rt_cluster", "ecommerce", "office", "random_flood"}) {
    const EnvironmentProfile p = profile_by_name(name);
    ASSERT_FALSE(p.mix.empty());
    for (const auto& share : p.mix) EXPECT_GT(share.weight, 0.0);
  }
}

TEST(ProfileTest, RtClusterIsMostlyInternalRegularTraffic) {
  const EnvironmentProfile p = rt_cluster_profile();
  EXPECT_LT(p.external_fraction, 0.1);
  EXPECT_LT(p.payload_jitter, 0.2);
  double rpc_weight = 0.0;
  double total = 0.0;
  for (const auto& share : p.mix) {
    total += share.weight;
    if (share.kind == PayloadKind::kClusterRpc) rpc_weight += share.weight;
  }
  EXPECT_GT(rpc_weight / total, 0.7);
}

}  // namespace
}  // namespace idseval::traffic
