#include "traffic/payload.hpp"

#include <gtest/gtest.h>

#include <cctype>

#include "util/rng.hpp"

namespace idseval::traffic {
namespace {

TEST(PayloadTest, HttpRequestLooksLikeHttp) {
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const std::string p = synthesize(PayloadKind::kHttpRequest, 300, rng);
    const bool get = p.rfind("GET ", 0) == 0;
    const bool post = p.rfind("POST ", 0) == 0;
    EXPECT_TRUE(get || post) << p.substr(0, 40);
    EXPECT_NE(p.find(" HTTP/1.0\r\n"), std::string::npos);
    EXPECT_NE(p.find("Host: "), std::string::npos);
    EXPECT_NE(p.find("User-Agent: "), std::string::npos);
  }
}

TEST(PayloadTest, HttpResponseHasStatusAndBody) {
  util::Rng rng(2);
  const std::string p = synthesize(PayloadKind::kHttpResponse, 500, rng);
  EXPECT_EQ(p.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(p.find("<html>"), std::string::npos);
  EXPECT_NE(p.find("Content-Length: "), std::string::npos);
}

TEST(PayloadTest, SmtpTransactionShape) {
  util::Rng rng(3);
  const std::string p = synthesize(PayloadKind::kSmtp, 400, rng);
  EXPECT_EQ(p.rfind("HELO ", 0), 0u);
  EXPECT_NE(p.find("MAIL FROM:<"), std::string::npos);
  EXPECT_NE(p.find("RCPT TO:<"), std::string::npos);
  EXPECT_NE(p.find("DATA"), std::string::npos);
  EXPECT_NE(p.find("\r\n.\r\n"), std::string::npos);
}

TEST(PayloadTest, FtpSessionShape) {
  util::Rng rng(4);
  const std::string p = synthesize(PayloadKind::kFtp, 200, rng);
  EXPECT_EQ(p.rfind("USER ", 0), 0u);
  EXPECT_NE(p.find("PASS "), std::string::npos);
  EXPECT_NE(p.find("RETR "), std::string::npos);
}

TEST(PayloadTest, TelnetHasLoginAndCommands) {
  util::Rng rng(5);
  const std::string p = synthesize(PayloadKind::kTelnet, 300, rng);
  EXPECT_EQ(p.rfind("login: ", 0), 0u);
  EXPECT_NE(p.find("Password: "), std::string::npos);
  EXPECT_NE(p.find("$ "), std::string::npos);
}

TEST(PayloadTest, ClusterRpcIsRegular) {
  util::Rng rng(6);
  const std::string p = synthesize(PayloadKind::kClusterRpc, 200, rng);
  EXPECT_EQ(p.rfind("RTBUS/1 seq=", 0), 0u);
  EXPECT_NE(p.find("cmd=TRACK_UPDATE"), std::string::npos);
}

TEST(PayloadTest, RandomIsPrintableAndExactLength) {
  util::Rng rng(7);
  const std::string p = synthesize(PayloadKind::kRandom, 257, rng);
  EXPECT_EQ(p.size(), 257u);
  for (const char c : p) {
    EXPECT_TRUE(std::isprint(static_cast<unsigned char>(c)));
  }
}

TEST(PayloadTest, LengthsTrackTarget) {
  util::Rng rng(8);
  for (const auto kind :
       {PayloadKind::kHttpRequest, PayloadKind::kHttpResponse,
        PayloadKind::kSmtp, PayloadKind::kTelnet,
        PayloadKind::kClusterRpc}) {
    for (const std::size_t target : {200u, 600u, 1200u}) {
      const std::string p = synthesize(kind, target, rng);
      EXPECT_GT(p.size(), target / 3) << to_string(kind);
      EXPECT_LT(p.size(), target * 3 + 200) << to_string(kind);
    }
  }
}

TEST(PayloadTest, DeterministicGivenSameRngState) {
  util::Rng a(99);
  util::Rng b(99);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(synthesize(PayloadKind::kHttpRequest, 300, a),
              synthesize(PayloadKind::kHttpRequest, 300, b));
  }
}

TEST(PayloadTest, HelperGenerators) {
  util::Rng rng(10);
  const std::string path = random_http_path(rng);
  EXPECT_EQ(path.front(), '/');
  const std::string host = random_hostname(rng);
  EXPECT_NE(host.find('.'), std::string::npos);
  EXPECT_NE(host.find('-'), std::string::npos);
  EXPECT_FALSE(random_username(rng).empty());
  EXPECT_EQ(random_printable(64, rng).size(), 64u);
}

TEST(PayloadTest, RandomWordsApproximateLength) {
  util::Rng rng(11);
  const std::string w = random_words(100, rng);
  EXPECT_EQ(w.size(), 100u);
  EXPECT_NE(w.find(' '), std::string::npos);
}

TEST(PayloadTest, KindNames) {
  EXPECT_EQ(to_string(PayloadKind::kHttpRequest), "http-request");
  EXPECT_EQ(to_string(PayloadKind::kClusterRpc), "cluster-rpc");
  EXPECT_EQ(to_string(PayloadKind::kRandom), "random");
}

}  // namespace
}  // namespace idseval::traffic
