// RocCurve edge cases: empty and single-class ledgers, tied critical
// sensitivities, strict vs. inclusive firing, single-transaction runs,
// AUC and the interpolated score-space EER.
#include "score/roc.hpp"

#include <gtest/gtest.h>

namespace idseval::score {
namespace {

ScoreSample sample(std::uint64_t flow, bool attack, double critical,
                   bool strict = false) {
  ScoreSample s;
  s.flow_id = flow;
  s.is_attack = attack;
  s.has_evidence = critical != kNeverFires;
  s.critical_sensitivity = critical;
  s.strict = strict;
  return s;
}

TEST(RocCurveTest, EmptyLedgerHasNoCurve) {
  const RocCurve roc{std::vector<ScoreSample>{}};
  EXPECT_EQ(roc.transactions(), 0u);
  EXPECT_DOUBLE_EQ(roc.auc(), 0.0);
  EXPECT_FALSE(roc.eer().found);
  const ErrorCounts c = roc.error_rate_at(0.5);
  EXPECT_EQ(c.transactions, 0u);
  EXPECT_DOUBLE_EQ(c.fp_percent_of_benign, 0.0);
  EXPECT_DOUBLE_EQ(c.fn_percent_of_attacks, 0.0);
}

TEST(RocCurveTest, AllBenignLedgerHasNoEerOrAuc) {
  const RocCurve roc{{sample(1, false, 0.3), sample(2, false, 0.7),
                      sample(3, false, kNeverFires)}};
  EXPECT_EQ(roc.attacks(), 0u);
  EXPECT_EQ(roc.benign(), 3u);
  EXPECT_FALSE(roc.eer().found);
  EXPECT_DOUBLE_EQ(roc.auc(), 0.0);
  // False alarms still count: both evidence-bearing flows fire at 0.8.
  const ErrorCounts c = roc.error_rate_at(0.8);
  EXPECT_EQ(c.false_alarms, 2u);
  EXPECT_NEAR(c.fp_percent_of_benign, 100.0 * 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.fn_percent_of_attacks, 0.0);
}

TEST(RocCurveTest, SingleTransactionInclusiveFiresAtItsCritical) {
  const RocCurve roc{{sample(7, true, 0.4, /*strict=*/false)}};
  EXPECT_EQ(roc.error_rate_at(0.39).detected_attacks, 0u);
  EXPECT_EQ(roc.error_rate_at(0.4).detected_attacks, 1u);
  EXPECT_EQ(roc.error_rate_at(1.0).detected_attacks, 1u);
  EXPECT_DOUBLE_EQ(roc.error_rate_at(0.4).fn_percent_of_attacks, 0.0);
}

TEST(RocCurveTest, StrictTriggerNeedsSensitivityAboveCritical) {
  const RocCurve roc{{sample(7, true, 0.4, /*strict=*/true)}};
  EXPECT_EQ(roc.error_rate_at(0.4).detected_attacks, 0u);
  EXPECT_EQ(roc.error_rate_at(0.4).missed_attacks, 1u);
  EXPECT_EQ(roc.error_rate_at(0.401).detected_attacks, 1u);
}

TEST(RocCurveTest, TiedScoresMoveTogether) {
  // Three attacks share one critical sensitivity: the step is atomic.
  const RocCurve roc{{sample(1, true, 0.5), sample(2, true, 0.5),
                      sample(3, true, 0.5), sample(4, false, kNeverFires)}};
  EXPECT_EQ(roc.error_rate_at(0.49).detected_attacks, 0u);
  EXPECT_EQ(roc.error_rate_at(0.5).detected_attacks, 3u);
  // One distinct threshold plus the implicit origin.
  ASSERT_EQ(roc.points().size(), 2u);
  EXPECT_DOUBLE_EQ(roc.points()[1].tpr, 1.0);
  EXPECT_DOUBLE_EQ(roc.points()[1].fpr, 0.0);
}

TEST(RocCurveTest, NeverFiringSamplesCapTheCurve) {
  // The detector can never reach the second attack: tpr tops out at 0.5
  // and AUC extends that plateau to fpr = 1 instead of inventing (1,1).
  const RocCurve roc{{sample(1, true, 0.2), sample(2, true, kNeverFires),
                      sample(3, false, 0.6)}};
  const RocPoint& last = roc.points().back();
  EXPECT_DOUBLE_EQ(last.tpr, 0.5);
  EXPECT_DOUBLE_EQ(last.fpr, 1.0);
  EXPECT_EQ(roc.error_rate_at(5.0).missed_attacks, 1u);
}

TEST(RocCurveTest, PerfectSeparationScoresAucOne) {
  const RocCurve roc{{sample(1, true, 0.1), sample(2, true, 0.2),
                      sample(3, false, 0.8)}};
  EXPECT_DOUBLE_EQ(roc.auc(), 1.0);
}

TEST(RocCurveTest, EerInterpolatesTheCrossing) {
  // fn% falls 100 -> 50 -> 0 at thresholds 0.2, 0.6; fp% rises to 50 at
  // 0.5. The curves meet exactly where fp% reaches fn%: 50% at s = 0.5.
  const RocCurve roc{{sample(1, true, 0.2), sample(2, true, 0.6),
                      sample(3, false, 0.5), sample(4, false, 0.9)}};
  const RocEer eer = roc.eer();
  ASSERT_TRUE(eer.found);
  EXPECT_NEAR(eer.error_percent, 50.0, 1e-9);
  EXPECT_NEAR(eer.sensitivity, 0.5, 1e-9);
}

TEST(RocCurveTest, ErrorCountsMatchHandComputedConfusion) {
  const RocCurve roc{{sample(1, true, 0.3), sample(2, true, 0.7),
                      sample(3, true, kNeverFires), sample(4, false, 0.4),
                      sample(5, false, kNeverFires),
                      sample(6, false, kNeverFires)}};
  const ErrorCounts c = roc.error_rate_at(0.5);
  EXPECT_EQ(c.transactions, 6u);
  EXPECT_EQ(c.attacks, 3u);
  EXPECT_EQ(c.benign, 3u);
  EXPECT_EQ(c.detected_attacks, 1u);
  EXPECT_EQ(c.missed_attacks, 2u);
  EXPECT_EQ(c.false_alarms, 1u);
  EXPECT_NEAR(c.fp_ratio, 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(c.fn_ratio, 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(c.fp_percent_of_benign, 100.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.fn_percent_of_attacks, 200.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace idseval::score
