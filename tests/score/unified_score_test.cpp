// Unified cost model math: component costs under explicit weights, the
// do-nothing baseline, and the normalized capability score.
#include "score/scorecard.hpp"

#include <iterator>

#include <gtest/gtest.h>

namespace idseval::score {
namespace {

TEST(UnifiedScoreTest, ComponentCostsFollowTheWeights) {
  CostWeights w;
  w.missed_attack = 10.0;
  w.false_alarm = 2.0;
  w.latency_per_sec = 1.0;
  w.host_cpu_fraction = 100.0;
  w.induced_latency_ms = 4.0;

  CostInputs in;
  in.transactions = 1000;
  in.attacks = 20;
  in.missed_attacks = 5;
  in.false_alarms = 3;
  in.true_detections = 15;
  in.mean_detection_latency_sec = 2.0;
  in.mean_host_ids_cpu = 0.1;
  in.induced_latency_sec = 0.001;  // 1 ms

  const UnifiedScore s = unified_score(in, w);
  EXPECT_DOUBLE_EQ(s.miss_cost, 50.0);
  EXPECT_DOUBLE_EQ(s.false_alarm_cost, 6.0);
  EXPECT_DOUBLE_EQ(s.latency_cost, 30.0);  // 1.0 * 2s * 15 detections
  EXPECT_DOUBLE_EQ(s.resource_cost, 10.0 + 4.0);
  EXPECT_DOUBLE_EQ(s.total_cost, 100.0);
  EXPECT_DOUBLE_EQ(s.baseline_cost, 200.0);
  EXPECT_DOUBLE_EQ(s.capability, 0.5);
}

TEST(UnifiedScoreTest, PerfectDetectorWithNoOverheadScoresOne) {
  CostInputs in;
  in.attacks = 10;
  in.true_detections = 10;
  const UnifiedScore s = unified_score(in);
  EXPECT_DOUBLE_EQ(s.total_cost, 0.0);
  EXPECT_DOUBLE_EQ(s.capability, 1.0);
}

TEST(UnifiedScoreTest, MissingEverythingScoresZero) {
  CostInputs in;
  in.attacks = 10;
  in.missed_attacks = 10;
  const UnifiedScore s = unified_score(in);
  EXPECT_DOUBLE_EQ(s.total_cost, s.baseline_cost);
  EXPECT_DOUBLE_EQ(s.capability, 0.0);
}

TEST(UnifiedScoreTest, CostlierThanNoIdsGoesNegative) {
  // All attacks missed AND false alarms on top: worse than no IDS.
  CostInputs in;
  in.attacks = 2;
  in.missed_attacks = 2;
  in.false_alarms = 100;
  const UnifiedScore s = unified_score(in);
  EXPECT_LT(s.capability, 0.0);
}

TEST(UnifiedScoreTest, AttackFreeWindowHasZeroCapability) {
  CostInputs in;
  in.transactions = 500;
  in.false_alarms = 4;
  const UnifiedScore s = unified_score(in);
  EXPECT_DOUBLE_EQ(s.baseline_cost, 0.0);
  EXPECT_DOUBLE_EQ(s.capability, 0.0);
  EXPECT_GT(s.total_cost, 0.0);
}

TEST(UnifiedScoreTest, DocKeysAreStable) {
  const results::Doc doc = to_doc(UnifiedScore{});
  const char* expected[] = {"miss_cost",     "false_alarm_cost",
                            "latency_cost",  "resource_cost",
                            "total_cost",    "baseline_cost",
                            "capability"};
  ASSERT_EQ(doc.size(), std::size(expected));
  std::size_t i = 0;
  for (const auto& [key, value] : doc.items()) {
    EXPECT_EQ(key, expected[i++]);
    EXPECT_TRUE(value.is_number());
  }

  const results::Doc weights = to_doc(CostWeights{});
  EXPECT_NE(weights.find("missed_attack"), nullptr);
  EXPECT_NE(weights.find("induced_latency_ms"), nullptr);
  EXPECT_EQ(weights.size(), 5u);
}

}  // namespace
}  // namespace idseval::score
