// ScoreLedger semantics: earliest-firing evidence wins per flow, raw
// strength is a running maximum across channels, and finalize joins the
// recorded evidence against the ground-truth ledger with the same
// [begin, end) start-time window the testbed scores with.
#include "score/ledger.hpp"

#include <gtest/gtest.h>

namespace idseval::score {
namespace {

using ids::EvidenceChannel;
using netsim::SimTime;

netsim::FiveTuple tuple(std::uint8_t host) {
  netsim::FiveTuple t;
  t.src_ip = netsim::Ipv4{192, 168, 0, host};
  t.dst_ip = netsim::Ipv4{10, 0, 0, 1};
  t.src_port = 40000;
  t.dst_port = 80;
  return t;
}

TEST(ScoreLedgerTest, KeepsTheEarliestFiringEvidence) {
  ScoreLedger ledger;
  ledger.observe(1, EvidenceChannel::kSignaturePattern, 0.9, 0.7,
                 /*strict=*/false);
  ledger.observe(1, EvidenceChannel::kAnomaly, 2.0, 0.3, /*strict=*/true);
  ledger.observe(1, EvidenceChannel::kNovelty, 0.1, 0.5, /*strict=*/false);

  ASSERT_NE(ledger.find(1), nullptr);
  const ScoreLedger::FlowEvidence& ev = *ledger.find(1);
  EXPECT_DOUBLE_EQ(ev.critical_sensitivity, 0.3);
  EXPECT_TRUE(ev.strict);
  EXPECT_EQ(ev.channel, EvidenceChannel::kAnomaly);
  EXPECT_DOUBLE_EQ(ev.max_strength, 2.0);  // max over all three channels
  EXPECT_EQ(ev.observations, 3u);
  EXPECT_EQ(ledger.flows(), 1u);
  EXPECT_EQ(ledger.observations(), 3u);
}

TEST(ScoreLedgerTest, InclusiveBeatsStrictOnEqualCritical) {
  ScoreLedger ledger;
  ledger.observe(1, EvidenceChannel::kAnomaly, 1.0, 0.5, /*strict=*/true);
  ledger.observe(1, EvidenceChannel::kSignaturePattern, 0.5, 0.5,
                 /*strict=*/false);
  EXPECT_FALSE(ledger.find(1)->strict);
  EXPECT_EQ(ledger.find(1)->channel, EvidenceChannel::kSignaturePattern);

  // The reverse order must converge to the same winner.
  ScoreLedger reversed;
  reversed.observe(1, EvidenceChannel::kSignaturePattern, 0.5, 0.5,
                   /*strict=*/false);
  reversed.observe(1, EvidenceChannel::kAnomaly, 1.0, 0.5, /*strict=*/true);
  EXPECT_FALSE(reversed.find(1)->strict);
  EXPECT_EQ(reversed.find(1)->channel, EvidenceChannel::kSignaturePattern);
}

TEST(ScoreLedgerTest, FinalizeWindowsOnTransactionStart) {
  traffic::TransactionLedger truth;
  truth.begin(1, tuple(1), SimTime::from_sec(1), /*is_attack=*/true, 0);
  truth.begin(2, tuple(2), SimTime::from_sec(5), /*is_attack=*/false);
  truth.begin(3, tuple(3), SimTime::from_sec(20), /*is_attack=*/true, 1);

  ScoreLedger ledger;
  ledger.observe(1, EvidenceChannel::kSignaturePattern, 0.8, 0.2,
                 /*strict=*/false);
  // Flow 3 has evidence too, but starts outside the window.
  ledger.observe(3, EvidenceChannel::kAnomaly, 4.0, 0.1, /*strict=*/true);

  ledger.finalize(truth, SimTime::from_sec(0), SimTime::from_sec(10));
  EXPECT_TRUE(ledger.finalized());
  ASSERT_EQ(ledger.samples().size(), 2u);

  const ScoreSample& attack = ledger.samples()[0];
  EXPECT_EQ(attack.flow_id, 1u);
  EXPECT_TRUE(attack.is_attack);
  EXPECT_TRUE(attack.has_evidence);
  EXPECT_DOUBLE_EQ(attack.critical_sensitivity, 0.2);
  EXPECT_DOUBLE_EQ(attack.strength, 0.8);

  const ScoreSample& benign = ledger.samples()[1];
  EXPECT_EQ(benign.flow_id, 2u);
  EXPECT_FALSE(benign.is_attack);
  EXPECT_FALSE(benign.has_evidence);
  EXPECT_DOUBLE_EQ(benign.critical_sensitivity, kNeverFires);
}

TEST(ScoreLedgerTest, MergedShardLedgersEqualSerialObservation) {
  // The sharded testbed feeds one ledger per shard and folds them with
  // merge_from before finalize; the fold must land on exactly the state
  // a single serially-fed ledger reaches, because the combine is pure
  // selection (min critical, max strength, summed counts).
  ScoreLedger serial;
  ScoreLedger shard_a;
  ScoreLedger shard_b;
  struct Obs {
    std::uint64_t flow;
    EvidenceChannel ch;
    double strength, critical;
    bool strict;
    ScoreLedger* shard;
  };
  const Obs obs[] = {
      {1, EvidenceChannel::kSignaturePattern, 0.9, 0.7, false, &shard_a},
      {1, EvidenceChannel::kAnomaly, 2.0, 0.3, true, &shard_b},
      {2, EvidenceChannel::kNovelty, 0.4, 0.5, true, &shard_a},
      {2, EvidenceChannel::kAnomaly, 0.6, 0.5, false, &shard_b},
      {3, EvidenceChannel::kSignaturePattern, 1.5, 0.9, true, &shard_b},
  };
  for (const Obs& o : obs) {
    serial.observe(o.flow, o.ch, o.strength, o.critical, o.strict);
    o.shard->observe(o.flow, o.ch, o.strength, o.critical, o.strict);
  }
  ScoreLedger merged;
  merged.merge_from(shard_a);
  merged.merge_from(shard_b);

  EXPECT_EQ(merged.flows(), serial.flows());
  EXPECT_EQ(merged.observations(), serial.observations());
  for (const std::uint64_t flow : {1u, 2u, 3u}) {
    const ScoreLedger::FlowEvidence* want = serial.find(flow);
    const ScoreLedger::FlowEvidence* got = merged.find(flow);
    ASSERT_NE(got, nullptr);
    EXPECT_DOUBLE_EQ(got->critical_sensitivity, want->critical_sensitivity)
        << "flow " << flow;
    EXPECT_EQ(got->strict, want->strict) << "flow " << flow;
    EXPECT_EQ(got->channel, want->channel) << "flow " << flow;
    EXPECT_DOUBLE_EQ(got->max_strength, want->max_strength)
        << "flow " << flow;
    EXPECT_EQ(got->observations, want->observations) << "flow " << flow;
  }
}

TEST(ScoreLedgerTest, ResetClearsEverything) {
  ScoreLedger ledger;
  ledger.observe(1, EvidenceChannel::kSignaturePattern, 0.5, 0.5, false);
  traffic::TransactionLedger truth;
  truth.begin(1, tuple(1), SimTime::from_sec(1), true, 0);
  ledger.finalize(truth, SimTime::zero(), SimTime::from_sec(10));

  ledger.reset();
  EXPECT_EQ(ledger.flows(), 0u);
  EXPECT_EQ(ledger.observations(), 0u);
  EXPECT_FALSE(ledger.finalized());
  EXPECT_TRUE(ledger.samples().empty());
}

}  // namespace
}  // namespace idseval::score
