#include "score/breakdown.hpp"

#include <gtest/gtest.h>

#include "attack/kind.hpp"
#include "results/table.hpp"

namespace idseval::score {
namespace {

using attack::AttackKind;
using attack::Stage;
using attack::Technique;

BreakdownInput input(AttackKind kind, Stage stage, bool detected,
                     bool prevented = false, double latency_sec = -1.0) {
  BreakdownInput in;
  in.kind = static_cast<int>(kind);
  in.stage = static_cast<int>(stage);
  in.detected = detected;
  in.prevented = prevented;
  if (latency_sec >= 0.0) {
    in.has_latency = true;
    in.latency_sec = latency_sec;
  }
  return in;
}

TEST(BreakdownTest, EmptyInputsYieldEmptyBreakdown) {
  const DetectionBreakdown b = compute_breakdown({});
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.chain_broken_at, -1);
  EXPECT_TRUE(technique_table_doc(b).is_null());
  EXPECT_TRUE(stage_table_doc(b).is_null());
}

TEST(BreakdownTest, BenignInputsAreIgnored) {
  BreakdownInput benign;
  benign.kind = -1;
  benign.detected = true;
  const DetectionBreakdown b = compute_breakdown({benign});
  EXPECT_TRUE(b.empty());
}

TEST(BreakdownTest, CountsRatesAndLatencyArithmetic) {
  const std::vector<BreakdownInput> inputs = {
      input(AttackKind::kPortScan, Stage::kRecon, true, false, 0.5),
      input(AttackKind::kPortScan, Stage::kRecon, true, false, 1.5),
      input(AttackKind::kPortScan, Stage::kRecon, false),
      input(AttackKind::kPortScan, Stage::kRecon, false),
      input(AttackKind::kDnsTunnel, Stage::kExfil, true, false, 2.0),
  };
  const DetectionBreakdown b = compute_breakdown(inputs);

  ASSERT_EQ(b.stages.size(), 2u);
  EXPECT_EQ(b.stages[0].stage, static_cast<int>(Stage::kRecon));
  EXPECT_EQ(b.stages[0].launched, 4u);
  EXPECT_EQ(b.stages[0].detected, 2u);
  EXPECT_EQ(b.stages[0].prevented, 0u);
  EXPECT_DOUBLE_EQ(b.stages[0].detection_rate(), 0.5);
  EXPECT_DOUBLE_EQ(b.stages[0].mean_latency_sec(), 1.0);
  EXPECT_EQ(b.stages[1].stage, static_cast<int>(Stage::kExfil));
  EXPECT_EQ(b.stages[1].launched, 1u);
  EXPECT_DOUBLE_EQ(b.stages[1].detection_rate(), 1.0);
  EXPECT_DOUBLE_EQ(b.stages[1].mean_latency_sec(), 2.0);

  ASSERT_EQ(b.techniques.size(), 2u);
  EXPECT_EQ(b.techniques[0].technique,
            static_cast<int>(Technique::kT1046));
  EXPECT_EQ(b.techniques[0].launched, 4u);
  EXPECT_EQ(b.techniques[1].technique,
            static_cast<int>(Technique::kT1048));
  EXPECT_EQ(b.chain_broken_at, -1);
}

TEST(BreakdownTest, SharedTechniqueAggregatesWithinOneStage) {
  // kWebExploit and kEvasiveExploit both map to ATT&CK T1190; run in the
  // same stage they must fold into one technique row.
  const std::vector<BreakdownInput> inputs = {
      input(AttackKind::kWebExploit, Stage::kExploit, true),
      input(AttackKind::kEvasiveExploit, Stage::kExploit, false),
  };
  const DetectionBreakdown b = compute_breakdown(inputs);
  ASSERT_EQ(b.techniques.size(), 1u);
  EXPECT_EQ(b.techniques[0].technique,
            static_cast<int>(Technique::kT1190));
  EXPECT_EQ(b.techniques[0].launched, 2u);
  EXPECT_EQ(b.techniques[0].detected, 1u);
  EXPECT_DOUBLE_EQ(b.techniques[0].detection_rate(), 0.5);
}

TEST(BreakdownTest, SameTechniqueInDifferentStagesStaysSeparate) {
  const std::vector<BreakdownInput> inputs = {
      input(AttackKind::kWebExploit, Stage::kExploit, true),
      input(AttackKind::kWebExploit, Stage::kLateral, false),
  };
  const DetectionBreakdown b = compute_breakdown(inputs);
  ASSERT_EQ(b.techniques.size(), 2u);
  EXPECT_EQ(b.techniques[0].stage, static_cast<int>(Stage::kExploit));
  EXPECT_EQ(b.techniques[1].stage, static_cast<int>(Stage::kLateral));
  EXPECT_EQ(b.techniques[0].technique, b.techniques[1].technique);
}

TEST(BreakdownTest, NegativeStageFallsBackToTraitsDefault) {
  // Flat scenarios predate stage labels: stage < 0 must classify under
  // the kind's default AttackTraits stage.
  BreakdownInput in;
  in.kind = static_cast<int>(AttackKind::kDnsTunnel);
  in.stage = -1;
  in.detected = true;
  const DetectionBreakdown b = compute_breakdown({in});
  ASSERT_EQ(b.stages.size(), 1u);
  EXPECT_EQ(b.stages[0].stage, static_cast<int>(Stage::kExfil));
}

TEST(BreakdownTest, ChainBrokenAtEarliestPreventedStage) {
  const std::vector<BreakdownInput> inputs = {
      input(AttackKind::kPortScan, Stage::kRecon, true),
      input(AttackKind::kWebExploit, Stage::kExploit, true, true),
      input(AttackKind::kDnsTunnel, Stage::kExfil, true, true),
  };
  const DetectionBreakdown b = compute_breakdown(inputs);
  EXPECT_EQ(b.chain_broken_at, static_cast<int>(Stage::kExploit));
  ASSERT_EQ(b.stages.size(), 3u);
  EXPECT_EQ(b.stages[1].prevented, 1u);
}

TEST(BreakdownTest, TablesRenderAttckIdsAndBrokenMarker) {
  const std::vector<BreakdownInput> inputs = {
      input(AttackKind::kPortScan, Stage::kRecon, true, false, 0.25),
      input(AttackKind::kWebExploit, Stage::kExploit, true, true),
  };
  const DetectionBreakdown b = compute_breakdown(inputs);

  const std::string techniques =
      results::render_table_text(technique_table_doc(b));
  EXPECT_NE(techniques.find("T1046"), std::string::npos);
  EXPECT_NE(techniques.find("T1190"), std::string::npos);
  EXPECT_NE(techniques.find("recon"), std::string::npos);

  const std::string stages = results::render_table_text(stage_table_doc(b));
  EXPECT_NE(stages.find("exploit"), std::string::npos);
  EXPECT_NE(stages.find("broken-here"), std::string::npos);

  const std::string csv = results::table_to_csv(technique_table_doc(b));
  EXPECT_NE(csv.find("attck"), std::string::npos);
  EXPECT_NE(csv.find("T1046"), std::string::npos);
}

}  // namespace
}  // namespace idseval::score
