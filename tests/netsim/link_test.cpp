#include "netsim/link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace idseval::netsim {
namespace {

Packet test_packet(Simulator& sim, std::uint32_t payload_bytes) {
  FiveTuple tuple;
  tuple.src_ip = Ipv4(10, 0, 0, 1);
  tuple.dst_ip = Ipv4(10, 0, 0, 2);
  return make_packet(sim.next_packet_id(), 1, sim.now(), tuple,
                     std::string(payload_bytes, 'x'));
}

TEST(LinkTest, SerializationDelayMatchesBandwidth) {
  Simulator sim;
  Link link(sim, "l", /*bandwidth_bps=*/8e6, SimTime::zero(), 16);
  // 1000 bytes at 8 Mb/s = 1 ms.
  EXPECT_EQ(link.serialization_delay(1000), SimTime::from_ms(1.0));
}

TEST(LinkTest, DeliversAfterSerializationPlusLatency) {
  Simulator sim;
  Link link(sim, "l", 8e6, SimTime::from_ms(2), 16);
  SimTime delivered_at;
  link.set_deliver([&](const Packet&) { delivered_at = sim.now(); });
  const Packet p = test_packet(sim, 960);  // +40B header = 1000B => 1ms
  link.send(p);
  sim.run_until();
  EXPECT_EQ(delivered_at, SimTime::from_ms(3.0));
}

TEST(LinkTest, BackToBackPacketsQueueBehindTransmitter) {
  Simulator sim;
  Link link(sim, "l", 8e6, SimTime::zero(), 16);
  std::vector<double> deliveries;
  link.set_deliver([&](const Packet&) {
    deliveries.push_back(sim.now().ms());
  });
  for (int i = 0; i < 3; ++i) link.send(test_packet(sim, 960));
  sim.run_until();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_DOUBLE_EQ(deliveries[0], 1.0);
  EXPECT_DOUBLE_EQ(deliveries[1], 2.0);
  EXPECT_DOUBLE_EQ(deliveries[2], 3.0);
}

TEST(LinkTest, TailDropsWhenQueueFull) {
  Simulator sim;
  Link link(sim, "l", 8e6, SimTime::zero(), /*queue=*/2);
  int delivered = 0;
  link.set_deliver([&](const Packet&) { ++delivered; });
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (link.send(test_packet(sim, 960))) ++accepted;
  }
  sim.run_until();
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.stats().dropped_packets, 8u);
  EXPECT_EQ(link.stats().offered_packets, 10u);
  EXPECT_NEAR(link.stats().drop_ratio(), 0.8, 1e-12);
}

TEST(LinkTest, QueueDrainsOverTime) {
  Simulator sim;
  Link link(sim, "l", 8e6, SimTime::zero(), 2);
  int delivered = 0;
  link.set_deliver([&](const Packet&) { ++delivered; });
  link.send(test_packet(sim, 960));
  link.send(test_packet(sim, 960));
  EXPECT_FALSE(link.send(test_packet(sim, 960)));  // full
  sim.run_until();
  // After draining, new sends are accepted again.
  EXPECT_TRUE(link.send(test_packet(sim, 960)));
  sim.run_until();
  EXPECT_EQ(delivered, 3);
}

TEST(LinkTest, StatsCountBytes) {
  Simulator sim;
  Link link(sim, "l", 1e9, SimTime::zero(), 16);
  link.set_deliver([](const Packet&) {});
  const Packet p = test_packet(sim, 100);
  link.send(p);
  sim.run_until();
  EXPECT_EQ(link.stats().offered_bytes, p.wire_bytes());
  EXPECT_EQ(link.stats().delivered_bytes, p.wire_bytes());
}

TEST(LinkTest, ZeroBandwidthMeansNoSerializationDelay) {
  Simulator sim;
  Link link(sim, "l", 0.0, SimTime::from_us(10), 4);
  SimTime delivered_at;
  link.set_deliver([&](const Packet&) { delivered_at = sim.now(); });
  link.send(test_packet(sim, 1000));
  sim.run_until();
  EXPECT_EQ(delivered_at, SimTime::from_us(10));
}

TEST(LinkTest, ResetStatsClearsCounters) {
  Simulator sim;
  Link link(sim, "l", 1e9, SimTime::zero(), 4);
  link.set_deliver([](const Packet&) {});
  link.send(test_packet(sim, 10));
  sim.run_until();
  link.reset_stats();
  EXPECT_EQ(link.stats().offered_packets, 0u);
  EXPECT_EQ(link.stats().delivered_packets, 0u);
}

}  // namespace
}  // namespace idseval::netsim
