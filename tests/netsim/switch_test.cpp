#include "netsim/switch.hpp"

#include <gtest/gtest.h>

#include "netsim/network.hpp"

namespace idseval::netsim {
namespace {

Packet make(Ipv4 src, Ipv4 dst, std::uint16_t dst_port = 80) {
  FiveTuple t;
  t.src_ip = src;
  t.dst_ip = dst;
  t.src_port = 4000;
  t.dst_port = dst_port;
  return make_packet(1, 1, SimTime::zero(), t, "x");
}

class SwitchTest : public ::testing::Test {
 protected:
  SwitchTest() : sw_(sim_) {}

  Simulator sim_;
  Switch sw_;
};

TEST_F(SwitchTest, NoRouteCounted) {
  sw_.receive(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 9)));
  EXPECT_EQ(sw_.stats().no_route, 1u);
  EXPECT_EQ(sw_.stats().forwarded, 0u);
}

TEST_F(SwitchTest, ForwardsViaAttachedEgress) {
  Link egress(sim_, "egress", 1e9, SimTime::zero(), 8);
  int delivered = 0;
  egress.set_deliver([&](const Packet&) { ++delivered; });
  sw_.attach(Ipv4(10, 0, 0, 2), &egress);
  sw_.receive(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2)));
  sim_.run_until();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(sw_.stats().forwarded, 1u);
}

TEST_F(SwitchTest, MultipleMirrorsAllSeeEachPacket) {
  int a = 0;
  int b = 0;
  sw_.add_mirror([&](const Packet&) { ++a; });
  sw_.add_mirror([&](const Packet&) { ++b; });
  sw_.receive(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2)));
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(sw_.stats().mirrored, 2u);
}

TEST_F(SwitchTest, BlockedPacketsNotMirrored) {
  // The block list runs at ingress, before the SPAN copy: a blocked
  // source is invisible to the IDS too (it cannot re-alert on traffic
  // the firewall already discarded).
  int mirrored = 0;
  sw_.add_mirror([&](const Packet&) { ++mirrored; });
  sw_.block_source(Ipv4(198, 51, 100, 1));
  sw_.receive(make(Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 2)));
  EXPECT_EQ(mirrored, 0);
  EXPECT_EQ(sw_.stats().blocked, 1u);
}

TEST_F(SwitchTest, MirrorSeesPacketBeforeInlineDelay) {
  // SPAN copy is taken at ingress; the in-line device only delays the
  // forwarded copy.
  Link egress(sim_, "egress", 1e9, SimTime::zero(), 8);
  SimTime delivered_at;
  egress.set_deliver([&](const Packet&) { delivered_at = sim_.now(); });
  sw_.attach(Ipv4(10, 0, 0, 2), &egress);

  SimTime mirrored_at = SimTime::max();
  sw_.add_mirror([&](const Packet&) { mirrored_at = sim_.now(); });
  sw_.set_inline_hook(
      [this](const Packet& p, std::function<void(const Packet&)> fwd) {
        sim_.schedule_in(SimTime::from_ms(5), [p, fwd] { fwd(p); });
      });

  sw_.receive(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2)));
  sim_.run_until();
  EXPECT_EQ(mirrored_at, SimTime::zero());
  EXPECT_GE(delivered_at, SimTime::from_ms(5));
}

TEST_F(SwitchTest, BlockListIsPerSource) {
  sw_.block_source(Ipv4(198, 51, 100, 1));
  EXPECT_TRUE(sw_.is_blocked(Ipv4(198, 51, 100, 1)));
  EXPECT_FALSE(sw_.is_blocked(Ipv4(198, 51, 100, 2)));
  EXPECT_EQ(sw_.blocked_count(), 1u);
  sw_.block_source(Ipv4(198, 51, 100, 1));  // idempotent
  EXPECT_EQ(sw_.blocked_count(), 1u);
  sw_.unblock_source(Ipv4(198, 51, 100, 1));
  EXPECT_FALSE(sw_.is_blocked(Ipv4(198, 51, 100, 1)));
}

TEST_F(SwitchTest, InlineHookReceivesEveryNonBlockedPacket) {
  int inline_seen = 0;
  sw_.set_inline_hook(
      [&](const Packet&, std::function<void(const Packet&)>) {
        ++inline_seen;
      });
  sw_.block_source(Ipv4(198, 51, 100, 1));
  sw_.receive(make(Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 2)));  // blocked
  sw_.receive(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2)));
  EXPECT_EQ(inline_seen, 1);
}

}  // namespace
}  // namespace idseval::netsim
