#include "netsim/address.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace idseval::netsim {
namespace {

TEST(Ipv4Test, DottedQuadRendering) {
  EXPECT_EQ(Ipv4(10, 0, 0, 1).to_string(), "10.0.0.1");
  EXPECT_EQ(Ipv4(198, 51, 100, 42).to_string(), "198.51.100.42");
  EXPECT_EQ(Ipv4(0u).to_string(), "0.0.0.0");
}

TEST(Ipv4Test, ValueRoundTrip) {
  const Ipv4 a(192, 168, 1, 7);
  EXPECT_EQ(Ipv4(a.value()), a);
}

TEST(Ipv4Test, SubnetMembership) {
  const Ipv4 net(10, 0, 0, 0);
  EXPECT_TRUE(Ipv4(10, 0, 0, 5).in_subnet(net, 8));
  EXPECT_TRUE(Ipv4(10, 255, 255, 255).in_subnet(net, 8));
  EXPECT_FALSE(Ipv4(11, 0, 0, 1).in_subnet(net, 8));
  EXPECT_TRUE(Ipv4(10, 0, 0, 5).in_subnet(Ipv4(10, 0, 0, 0), 24));
  EXPECT_FALSE(Ipv4(10, 0, 1, 5).in_subnet(Ipv4(10, 0, 0, 0), 24));
}

TEST(Ipv4Test, SubnetEdgeCases) {
  EXPECT_TRUE(Ipv4(1, 2, 3, 4).in_subnet(Ipv4(9, 9, 9, 9), 0));
  EXPECT_TRUE(Ipv4(1, 2, 3, 4).in_subnet(Ipv4(1, 2, 3, 4), 32));
  EXPECT_FALSE(Ipv4(1, 2, 3, 5).in_subnet(Ipv4(1, 2, 3, 4), 32));
}

TEST(FiveTupleTest, CanonicalOrdersEndpoints) {
  FiveTuple forward;
  forward.src_ip = Ipv4(10, 0, 0, 1);
  forward.dst_ip = Ipv4(10, 0, 0, 2);
  forward.src_port = 4000;
  forward.dst_port = 80;
  FiveTuple reverse = forward;
  std::swap(reverse.src_ip, reverse.dst_ip);
  std::swap(reverse.src_port, reverse.dst_port);
  EXPECT_EQ(forward.canonical(), reverse.canonical());
}

TEST(FiveTupleTest, CanonicalIdempotent) {
  FiveTuple t;
  t.src_ip = Ipv4(10, 0, 0, 9);
  t.dst_ip = Ipv4(10, 0, 0, 2);
  t.src_port = 1;
  t.dst_port = 2;
  EXPECT_EQ(t.canonical(), t.canonical().canonical());
}

TEST(FiveTupleTest, HashConsistentWithEquality) {
  FiveTuple a;
  a.src_ip = Ipv4(1, 2, 3, 4);
  a.src_port = 10;
  FiveTuple b = a;
  EXPECT_EQ(FiveTupleHash{}(a), FiveTupleHash{}(b));
  b.dst_port = 99;
  EXPECT_NE(FiveTupleHash{}(a), FiveTupleHash{}(b));  // overwhelmingly
}

TEST(FiveTupleTest, HashSpreads) {
  std::unordered_set<std::size_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    FiveTuple t;
    t.src_ip = Ipv4(10, 0, 0, static_cast<std::uint8_t>(i % 250));
    t.src_port = static_cast<std::uint16_t>(1000 + i);
    t.dst_port = 80;
    hashes.insert(FiveTupleHash{}(t));
  }
  EXPECT_GT(hashes.size(), 990u);
}

TEST(ProtocolTest, Names) {
  EXPECT_EQ(to_string(Protocol::kTcp), "tcp");
  EXPECT_EQ(to_string(Protocol::kUdp), "udp");
  EXPECT_EQ(to_string(Protocol::kIcmp), "icmp");
}

TEST(FiveTupleTest, ToStringContainsEndpoints) {
  FiveTuple t;
  t.src_ip = Ipv4(10, 0, 0, 1);
  t.dst_ip = Ipv4(10, 0, 0, 2);
  t.src_port = 1234;
  t.dst_port = 80;
  const std::string s = t.to_string();
  EXPECT_NE(s.find("10.0.0.1:1234"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.2:80"), std::string::npos);
}

}  // namespace
}  // namespace idseval::netsim
