// ShardedSimulator unit tests: the conservative window protocol and the
// cross-shard mailbox ordering rule. The harness-level golden-hash tests
// prove whole-run equivalence; these pin the engine-level invariants the
// proof rests on — in particular that same-tick messages converging on
// one shard from several source shards execute in the exact (when, lane,
// seq) order a single serial heap would have produced.
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/sharded.hpp"
#include "netsim/sim_time.hpp"

namespace idseval::netsim {
namespace {

SimTime us(std::int64_t v) { return SimTime::from_us(v); }

TEST(ShardPlanTest, CentralKeepsShardZeroAsHubAndIsStable) {
  const ShardPlan plan = ShardPlan::central(4);
  EXPECT_EQ(plan.shards(), 4u);
  EXPECT_TRUE(plan.central_hub());
  // The map depends only on (address, shard count): same address, same
  // shard, every time — and never the hub.
  const Ipv4 addr(0x0a000007);
  const std::size_t s = plan.shard_of(addr);
  EXPECT_GE(s, 1u);
  EXPECT_LT(s, 4u);
  EXPECT_EQ(ShardPlan::central(4).shard_of(addr), s);
}

TEST(ShardPlanTest, SingleShardMapsEverythingToZero) {
  const ShardPlan plan = ShardPlan::central(1);
  EXPECT_EQ(plan.shard_of(Ipv4(0x0a000001)), 0u);
  EXPECT_EQ(plan.shard_of(Ipv4(0xc0a80101)), 0u);
}

TEST(ShardedSimulatorTest, SingleShardDelegatesToTheLegacyLoop) {
  ShardedSimulator engine{ShardPlan::central(1)};
  int fired = 0;
  engine.hub().schedule_at(us(10), [&] { ++fired; });
  EXPECT_EQ(engine.run_until(us(20)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.hub().now(), us(20));
  // No windows ran: the legacy path has no barriers.
  EXPECT_EQ(engine.stats().windows, 0u);
}

TEST(ShardedSimulatorTest, RunUntilAlignsEveryShardClock) {
  ShardedSimulator engine{ShardPlan::central(3)};
  engine.add_channel(0, 1, us(50));
  engine.add_channel(1, 0, us(50));
  engine.run_until(us(500));
  for (std::size_t s = 0; s < engine.shards(); ++s) {
    EXPECT_EQ(engine.shard(s).now(), us(500)) << "shard " << s;
  }
}

// The determinism keystone: same-tick messages from DIFFERENT source
// shards landing on one destination shard must interleave with each
// other and with the destination's own events exactly as the (lane, seq)
// key dictates — not in mailbox-drain order or source-shard order.
TEST(ShardedSimulatorTest, SameTickCrossShardMessagesMergeInLaneOrder) {
  ShardedSimulator engine{ShardPlan::central(3)};
  engine.add_channel(0, 1, us(50));
  engine.add_channel(0, 2, us(50));
  engine.add_channel(1, 0, us(50));
  engine.add_channel(2, 0, us(50));

  std::vector<std::string> order;
  const SimTime tick = us(200);
  // Shards 1 and 2 each send the hub a message for the same future tick;
  // lanes are deliberately inverted relative to source-shard index so a
  // source-ordered (or drain-ordered) merge would differ from the lane
  // order. The hub also has a local lane-0 event at that tick, which
  // must run first.
  engine.shard(1).schedule_at(us(100), [&] {
    engine.post(1, 0, tick, /*lane=*/7, [&] { order.push_back("s1:lane7"); });
    engine.post(1, 0, tick, /*lane=*/7, [&] { order.push_back("s1:lane7b"); });
  });
  engine.shard(2).schedule_at(us(100), [&] {
    engine.post(2, 0, tick, /*lane=*/3, [&] { order.push_back("s2:lane3"); });
  });
  engine.hub().schedule_at(tick, [&] { order.push_back("hub:lane0"); });

  engine.run_until(us(400));
  const std::vector<std::string> want = {"hub:lane0", "s2:lane3",
                                         "s1:lane7", "s1:lane7b"};
  EXPECT_EQ(order, want);
  EXPECT_EQ(engine.stats().total_messages(), 3u);
}

// Messages posted within a window arrive at least one lookahead later,
// so no shard ever receives a message from its own past (the engine's
// safety invariant). With a 50us channel, a message posted at 100us for
// tick 150us must still execute — at its exact tick — even though the
// destination shard is running concurrently.
TEST(ShardedSimulatorTest, LookaheadBoundaryMessageArrivesOnTime) {
  ShardedSimulator engine{ShardPlan::central(2)};
  engine.add_channel(0, 1, us(50));
  engine.add_channel(1, 0, us(50));
  EXPECT_EQ(engine.lookahead(), us(50));

  SimTime executed_at = SimTime::zero();
  SimTime dst_now = SimTime::zero();
  engine.hub().schedule_at(us(100), [&] {
    engine.post(0, 1, us(150), /*lane=*/1, [&] {
      executed_at = us(150);
      dst_now = engine.shard(1).now();
    });
  });
  engine.run_until(us(300));
  EXPECT_EQ(executed_at, us(150));
  EXPECT_EQ(dst_now, us(150));
  EXPECT_GE(engine.stats().windows, 1u);
}

// A chain that ping-pongs between shards: each hop re-posts one channel
// delay ahead. Exercises repeated windows, and the count pins that every
// hop ran exactly once.
TEST(ShardedSimulatorTest, CrossShardPingPongChainsThroughWindows) {
  ShardedSimulator engine{ShardPlan::central(2)};
  engine.add_channel(0, 1, us(50));
  engine.add_channel(1, 0, us(50));

  int hops = 0;
  std::function<void(std::size_t, SimTime)> hop =
      [&](std::size_t from, SimTime when) {
        ++hops;
        if (hops >= 8) return;
        const std::size_t to = 1 - from;
        engine.post(from, to, when + us(50), /*lane=*/1,
                    [&hop, to, when] { hop(to, when + us(50)); });
      };
  engine.hub().schedule_at(us(10), [&] { hop(0, us(10)); });
  engine.run_until(us(1000));
  EXPECT_EQ(hops, 8);
  EXPECT_EQ(engine.stats().total_messages(), 7u);
}

TEST(ShardedSimulatorTest, ThreadedAndSequentialOrdersAgree) {
  // Same workload under both execution modes; the observable order must
  // be identical (the golden-hash harness test proves this at scale —
  // this is the minimal engine-level version).
  auto run = [](bool threaded) {
    ShardedSimulator engine{ShardPlan::central(3)};
    engine.set_threaded(threaded);
    engine.add_channel(0, 1, us(50));
    engine.add_channel(0, 2, us(50));
    engine.add_channel(1, 0, us(50));
    engine.add_channel(2, 0, us(50));
    std::vector<std::string> order;
    for (std::size_t s : {1u, 2u}) {
      engine.shard(s).schedule_at(us(40), [&engine, &order, s] {
        for (int k = 0; k < 3; ++k) {
          engine.post(s, 0, us(100 + 10 * k), static_cast<std::uint32_t>(s),
                      [&order, s, k] {
                        order.push_back(std::to_string(s) + ":" +
                                        std::to_string(k));
                      });
        }
      });
    }
    engine.run_until(us(400));
    return order;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace idseval::netsim
