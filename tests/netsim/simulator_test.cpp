#include "netsim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace idseval::netsim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::from_ms(3), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::from_ms(1), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::from_ms(2), [&] { order.push_back(2); });
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const SimTime t = SimTime::from_ms(5);
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sim.run_until();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, NowAdvancesToEventTime) {
  Simulator sim;
  SimTime seen;
  sim.schedule_at(SimTime::from_us(250), [&] { seen = sim.now(); });
  sim.run_until();
  EXPECT_EQ(seen, SimTime::from_us(250));
  EXPECT_EQ(sim.now(), SimTime::from_us(250));
}

TEST(SimulatorTest, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(SimTime::from_ms(10), [&] {
    sim.schedule_in(SimTime::from_ms(5),
                    [&] { times.push_back(sim.now().ms()); });
  });
  sim.run_until();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 15.0);
}

TEST(SimulatorTest, PastSchedulingClampsToNow) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(SimTime::from_ms(10), [&] {
    sim.schedule_at(SimTime::from_ms(1), [&] {
      ran = true;
      EXPECT_EQ(sim.now(), SimTime::from_ms(10));
    });
  });
  sim.run_until();
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, DeadlineStopsExecution) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(SimTime::from_ms(1), [&] { ++ran; });
  sim.schedule_at(SimTime::from_ms(100), [&] { ++ran; });
  sim.run_until(SimTime::from_ms(50));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.pending(), 1u);
  // Time advanced to the deadline even though no event fired there.
  EXPECT_EQ(sim.now(), SimTime::from_ms(50));
  sim.run_until();
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, EventsCanCascade) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_in(SimTime::from_us(1), recurse);
  };
  sim.schedule_at(SimTime::zero(), recurse);
  sim.run_until();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.executed(), 100u);
}

TEST(SimulatorTest, StepExecutesOne) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(SimTime::from_ms(1), [&] { ++ran; });
  sim.schedule_at(SimTime::from_ms(2), [&] { ++ran; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, IdsAreUniqueAndMonotonic) {
  Simulator sim;
  const auto p1 = sim.next_packet_id();
  const auto p2 = sim.next_packet_id();
  const auto f1 = sim.next_flow_id();
  EXPECT_LT(p1, p2);
  EXPECT_EQ(f1, 1u);
}

TEST(SimulatorTest, RunUntilReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.schedule_at(SimTime::from_us(i), [] {});
  }
  EXPECT_EQ(sim.run_until(), 7u);
}

}  // namespace
}  // namespace idseval::netsim
