// Packed FlowTuple key: loss-free FiveTuple round-trip, the
// canonical-form commutation property (from(t.canonical()) ==
// from(t).canonical()), and the raw-byte hash contract that FiveTupleHash
// now delegates to.
#include "netsim/flow_tuple.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace idseval::netsim {
namespace {

FiveTuple random_tuple(util::Rng& rng) {
  FiveTuple t;
  t.src_ip = Ipv4(static_cast<std::uint32_t>(rng.uniform_u64(0, ~0u)));
  t.dst_ip = Ipv4(static_cast<std::uint32_t>(rng.uniform_u64(0, ~0u)));
  t.src_port = static_cast<std::uint16_t>(rng.uniform_u64(0, 65535));
  t.dst_port = static_cast<std::uint16_t>(rng.uniform_u64(0, 65535));
  const Protocol protos[] = {Protocol::kTcp, Protocol::kUdp,
                             Protocol::kIcmp};
  t.proto = protos[rng.uniform_u64(0, 2)];
  return t;
}

TEST(FlowTupleTest, FiveTupleRoundTripIsLossFree) {
  util::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const FiveTuple t = random_tuple(rng);
    const FlowTuple packed = FlowTuple::from(t);
    const FiveTuple back = packed.to_five_tuple();
    EXPECT_EQ(back, t);
    EXPECT_EQ(FlowTuple::from(back), packed);
  }
}

TEST(FlowTupleTest, CanonicalCommutesWithFiveTupleCanonical) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const FiveTuple t = random_tuple(rng);
    EXPECT_EQ(FlowTuple::from(t.canonical()),
              FlowTuple::from(t).canonical())
        << t.to_string();
  }
  // Both directions of a session share one canonical key.
  FiveTuple fwd;
  fwd.src_ip = Ipv4(10, 0, 0, 9);
  fwd.dst_ip = Ipv4(10, 0, 0, 2);
  fwd.src_port = 40000;
  fwd.dst_port = 80;
  FiveTuple rev;
  rev.src_ip = fwd.dst_ip;
  rev.dst_ip = fwd.src_ip;
  rev.src_port = fwd.dst_port;
  rev.dst_port = fwd.src_port;
  rev.proto = fwd.proto;
  EXPECT_EQ(FlowTuple::from(fwd).canonical(),
            FlowTuple::from(rev).canonical());
}

TEST(FlowTupleTest, HashIsStableAndFieldSensitive) {
  FiveTuple t;
  t.src_ip = Ipv4(10, 0, 0, 1);
  t.dst_ip = Ipv4(10, 0, 0, 2);
  t.src_port = 4000;
  t.dst_port = 80;
  const FlowTuple a = FlowTuple::from(t);
  EXPECT_EQ(a.hash(), a.hash());

  // Flipping any single field must change the packed bytes, hence the
  // key — and (with overwhelming probability for these fixed values)
  // the hash.
  FlowTuple b = a;
  b.src_addr ^= 1;
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
  b = a;
  b.dst_port ^= 1;
  EXPECT_NE(a.hash(), b.hash());
  b = a;
  b.proto ^= 1;
  EXPECT_NE(a.hash(), b.hash());
}

TEST(FlowTupleTest, FiveTupleHashDelegatesToPackedBytes) {
  util::Rng rng(1234);
  for (int i = 0; i < 200; ++i) {
    const FiveTuple t = random_tuple(rng);
    EXPECT_EQ(FiveTupleHash{}(t),
              static_cast<std::size_t>(FlowTuple::from(t).hash()));
  }
}

TEST(FlowTupleTest, DistinctServicesNeverShareAKey) {
  // The regression class the packed key closes: under the old XOR-folded
  // triple key, (dst, dst_port) pairs related by
  // dst_b == dst_a ^ ((port_a ^ port_b) << 16) collided. As exact packed
  // fields they cannot.
  const std::uint32_t dst_a = Ipv4(10, 0, 2, 1).value();
  const std::uint16_t port_a = ports::kClusterRpc;
  const std::uint16_t port_b = ports::kHttp;
  const std::uint32_t dst_b =
      dst_a ^ (static_cast<std::uint32_t>(port_a ^ port_b) << 16);
  // Old single-word folding really collides for this pair:
  EXPECT_EQ(dst_a ^ (static_cast<std::uint32_t>(port_a) << 16),
            dst_b ^ (static_cast<std::uint32_t>(port_b) << 16));

  const FlowTuple ta{0, dst_a, 0, port_a, 0};
  const FlowTuple tb{0, dst_b, 0, port_b, 0};
  EXPECT_NE(ta, tb);

  util::FlowSet<FlowTuple, FlowTupleHash> set;
  EXPECT_TRUE(set.insert(ta));
  EXPECT_TRUE(set.insert(tb));  // would be swallowed under the old key
  EXPECT_EQ(set.size(), 2u);
}

TEST(FlowTupleTest, FlowMapKeyedByTuple) {
  FlowMap<int> map;
  util::Rng rng(5);
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 500; ++i) {
    const FlowTuple key = FlowTuple::from(random_tuple(rng));
    map.try_emplace(key, i);
    hashes.insert(key.hash());
  }
  // 500 random 13-byte keys: no 64-bit hash collisions expected.
  EXPECT_EQ(hashes.size(), map.size());
  EXPECT_EQ(map.size(), 500u);
}

TEST(FlowTupleTest, ToStringMatchesFiveTuple) {
  FiveTuple t;
  t.src_ip = Ipv4(10, 0, 0, 1);
  t.dst_ip = Ipv4(192, 168, 1, 2);
  t.src_port = 1234;
  t.dst_port = 80;
  EXPECT_EQ(FlowTuple::from(t).to_string(), t.to_string());
}

}  // namespace
}  // namespace idseval::netsim
