#include "netsim/network.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace idseval::netsim {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_) {
    a_ = net_.add_host("a", Ipv4(10, 0, 0, 1));
    b_ = net_.add_host("b", Ipv4(10, 0, 0, 2));
    ext_ = net_.add_external_host("ext", Ipv4(198, 51, 100, 1));
  }

  Packet packet(Ipv4 src, Ipv4 dst, std::string payload = "hi") {
    FiveTuple tuple;
    tuple.src_ip = src;
    tuple.dst_ip = dst;
    tuple.src_port = 1234;
    tuple.dst_port = 80;
    return make_packet(sim_.next_packet_id(), sim_.next_flow_id(),
                       sim_.now(), tuple, std::move(payload));
  }

  Simulator sim_;
  Network net_;
  Host* a_ = nullptr;
  Host* b_ = nullptr;
  Host* ext_ = nullptr;
};

TEST_F(NetworkTest, RejectsDuplicateAddress) {
  EXPECT_THROW(net_.add_host("dup", Ipv4(10, 0, 0, 1)),
               std::invalid_argument);
}

TEST_F(NetworkTest, FindHost) {
  EXPECT_EQ(net_.find_host(Ipv4(10, 0, 0, 1)), a_);
  EXPECT_EQ(net_.find_host(Ipv4(10, 0, 0, 99)), nullptr);
}

TEST_F(NetworkTest, DeliversEndToEnd) {
  int received = 0;
  b_->add_receiver([&](const Packet&) { ++received; });
  net_.send(packet(a_->address(), b_->address()));
  sim_.run_until();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(b_->packets_received(), 1u);
  EXPECT_EQ(a_->packets_received(), 0u);
}

TEST_F(NetworkTest, ExternalToInternalTraversesWan) {
  SimTime arrival;
  b_->add_receiver([&](const Packet&) { arrival = sim_.now(); });
  net_.send(packet(ext_->address(), b_->address()));
  sim_.run_until();
  // WAN latency (20ms default) dominates: arrival well past LAN-only time.
  EXPECT_GT(arrival, SimTime::from_ms(15));
}

TEST_F(NetworkTest, UnknownSourceThrows) {
  EXPECT_THROW(net_.send(packet(Ipv4(1, 2, 3, 4), b_->address())),
               std::invalid_argument);
}

TEST_F(NetworkTest, UnroutableDestinationCountsNoRoute) {
  net_.send(packet(a_->address(), Ipv4(10, 0, 0, 99)));
  sim_.run_until();
  EXPECT_EQ(net_.lan_switch().stats().no_route, 1u);
}

TEST_F(NetworkTest, MirrorSeesForwardedTraffic) {
  int mirrored = 0;
  net_.lan_switch().add_mirror([&](const Packet&) { ++mirrored; });
  net_.send(packet(a_->address(), b_->address()));
  net_.send(packet(b_->address(), a_->address()));
  sim_.run_until();
  EXPECT_EQ(mirrored, 2);
}

TEST_F(NetworkTest, BlockedSourceIsDroppedAtSwitch) {
  int received = 0;
  b_->add_receiver([&](const Packet&) { ++received; });
  net_.lan_switch().block_source(a_->address());
  net_.send(packet(a_->address(), b_->address()));
  sim_.run_until();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net_.lan_switch().stats().blocked, 1u);
  // Unblock restores delivery.
  net_.lan_switch().unblock_source(a_->address());
  net_.send(packet(a_->address(), b_->address()));
  sim_.run_until();
  EXPECT_EQ(received, 1);
}

TEST_F(NetworkTest, InlineHookCanDelayForwarding) {
  SimTime arrival;
  b_->add_receiver([&](const Packet&) { arrival = sim_.now(); });
  SimTime baseline_arrival;
  {
    // First measure without hook.
    net_.send(packet(a_->address(), b_->address()));
    sim_.run_until();
    baseline_arrival = arrival;
  }
  net_.lan_switch().set_inline_hook(
      [&](const Packet& p, std::function<void(const Packet&)> fwd) {
        sim_.schedule_in(SimTime::from_ms(1), [p, fwd] { fwd(p); });
      });
  const SimTime start = sim_.now();
  net_.send(packet(a_->address(), b_->address()));
  sim_.run_until();
  EXPECT_GE(arrival - start, baseline_arrival + SimTime::from_ms(1) -
                                 SimTime::zero());
}

TEST_F(NetworkTest, InlineHookCanDropTraffic) {
  int received = 0;
  b_->add_receiver([&](const Packet&) { ++received; });
  net_.lan_switch().set_inline_hook(
      [](const Packet&, std::function<void(const Packet&)>) {
        // Swallow everything.
      });
  net_.send(packet(a_->address(), b_->address()));
  sim_.run_until();
  EXPECT_EQ(received, 0);
}

TEST_F(NetworkTest, AggregateStatsSumAcrossHosts) {
  net_.send(packet(a_->address(), b_->address()));
  net_.send(packet(b_->address(), a_->address()));
  sim_.run_until();
  const LinkStats up = net_.aggregate_uplink_stats();
  EXPECT_EQ(up.offered_packets, 2u);
  EXPECT_EQ(up.delivered_packets, 2u);
  const LinkStats down = net_.aggregate_downlink_stats();
  EXPECT_EQ(down.delivered_packets, 2u);
  net_.reset_link_stats();
  EXPECT_EQ(net_.aggregate_uplink_stats().offered_packets, 0u);
}

TEST_F(NetworkTest, HostCpuAccounting) {
  a_->begin_accounting(sim_.now());
  a_->charge_ops(5e7, /*ids_work=*/true);
  a_->charge_ops(1e8, /*ids_work=*/false);
  a_->end_accounting(sim_.now() + SimTime::from_sec(1));
  // 5e7 IDS ops on a 1e9 ops/s host over 1 s = 5%.
  EXPECT_NEAR(a_->ids_cpu_fraction(), 0.05, 1e-9);
  EXPECT_NEAR(a_->total_cpu_fraction(), 0.15, 1e-9);
}

TEST_F(NetworkTest, ChargesOutsideAccountingWindowIgnored) {
  a_->charge_ops(1e9, true);  // before begin_accounting
  a_->begin_accounting(sim_.now());
  a_->end_accounting(sim_.now() + SimTime::from_sec(1));
  EXPECT_EQ(a_->ids_cpu_fraction(), 0.0);
}

}  // namespace
}  // namespace idseval::netsim
