#include "netsim/sim_time.hpp"

#include <gtest/gtest.h>

namespace idseval::netsim {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(SimTime::from_us(1.0).ns(), 1000);
  EXPECT_EQ(SimTime::from_ms(1.0).ns(), 1'000'000);
  EXPECT_EQ(SimTime::from_sec(1.0).ns(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::from_ns(2'500'000).ms(), 2.5);
  EXPECT_DOUBLE_EQ(SimTime::from_sec(0.75).sec(), 0.75);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::from_ms(3.0);
  const SimTime b = SimTime::from_ms(1.5);
  EXPECT_EQ((a + b).ns(), 4'500'000);
  EXPECT_EQ((a - b).ns(), 1'500'000);
  EXPECT_EQ((a * 2.0).ns(), 6'000'000);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c, SimTime::from_ms(4.5));
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::from_us(1), SimTime::from_us(2));
  EXPECT_EQ(SimTime::zero(), SimTime::from_ns(0));
  EXPECT_GT(SimTime::max(), SimTime::from_sec(1e9));
}

TEST(SimTimeTest, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::from_ns(12).to_string(), "12ns");
  EXPECT_EQ(SimTime::from_us(3.0).to_string(), "3.000us");
  EXPECT_EQ(SimTime::from_ms(2.5).to_string(), "2.500ms");
  EXPECT_EQ(SimTime::from_sec(1.25).to_string(), "1.250s");
}

}  // namespace
}  // namespace idseval::netsim
