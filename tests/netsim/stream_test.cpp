#include "netsim/stream.hpp"

#include <gtest/gtest.h>

namespace idseval::netsim {
namespace {

Packet stream_packet(Ipv4 src, Ipv4 dst, std::uint16_t sport,
                     std::uint16_t dport, SimTime when, TcpFlags flags,
                     std::string payload = "") {
  FiveTuple t;
  t.src_ip = src;
  t.dst_ip = dst;
  t.src_port = sport;
  t.dst_port = dport;
  Packet p = make_packet(1, 1, when, t, std::move(payload), flags);
  return p;
}

TEST(StreamTrackerTest, NewStreamOnSyn) {
  StreamTracker tracker;
  TcpFlags syn;
  syn.syn = true;
  const StreamInfo& info = tracker.observe(stream_packet(
      Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 4000, 80, SimTime::zero(), syn));
  EXPECT_EQ(info.state, StreamState::kSynSeen);
  EXPECT_EQ(tracker.active_streams(), 1u);
  EXPECT_EQ(tracker.total_streams_seen(), 1u);
}

TEST(StreamTrackerTest, BothDirectionsShareOneStream) {
  StreamTracker tracker;
  TcpFlags syn;
  syn.syn = true;
  TcpFlags ack;
  ack.ack = true;
  tracker.observe(stream_packet(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 4000,
                                80, SimTime::zero(), syn));
  tracker.observe(stream_packet(Ipv4(10, 0, 0, 2), Ipv4(10, 0, 0, 1), 80,
                                4000, SimTime::from_ms(1), ack));
  EXPECT_EQ(tracker.active_streams(), 1u);
  EXPECT_EQ(tracker.total_streams_seen(), 1u);
}

TEST(StreamTrackerTest, StateProgression) {
  StreamTracker tracker;
  const Ipv4 a(10, 0, 0, 1);
  const Ipv4 b(10, 0, 0, 2);
  TcpFlags syn;
  syn.syn = true;
  TcpFlags ack;
  ack.ack = true;
  TcpFlags fin;
  fin.fin = true;

  tracker.observe(stream_packet(a, b, 4000, 80, SimTime::zero(), syn));
  const StreamInfo& established = tracker.observe(
      stream_packet(a, b, 4000, 80, SimTime::from_ms(1), ack));
  EXPECT_EQ(established.state, StreamState::kEstablished);
  const StreamInfo& closing = tracker.observe(
      stream_packet(a, b, 4000, 80, SimTime::from_ms(2), fin));
  EXPECT_EQ(closing.state, StreamState::kClosing);
  const StreamInfo& closed = tracker.observe(
      stream_packet(b, a, 80, 4000, SimTime::from_ms(3), fin));
  EXPECT_EQ(closed.state, StreamState::kClosed);
}

TEST(StreamTrackerTest, RstClosesImmediately) {
  StreamTracker tracker;
  TcpFlags syn;
  syn.syn = true;
  TcpFlags rst;
  rst.rst = true;
  tracker.observe(stream_packet(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1, 2,
                                SimTime::zero(), syn));
  const StreamInfo& info = tracker.observe(stream_packet(
      Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1, 2, SimTime::from_ms(1), rst));
  EXPECT_EQ(info.state, StreamState::kClosed);
}

TEST(StreamTrackerTest, ExpireRemovesIdleAndClosed) {
  StreamTracker tracker(SimTime::from_sec(10));
  TcpFlags syn;
  syn.syn = true;
  tracker.observe(stream_packet(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1, 2,
                                SimTime::zero(), syn));
  tracker.observe(stream_packet(Ipv4(10, 0, 0, 3), Ipv4(10, 0, 0, 4), 3, 4,
                                SimTime::from_sec(9), syn));
  tracker.expire(SimTime::from_sec(12));
  // First stream idle > 10s, second still fresh.
  EXPECT_EQ(tracker.active_streams(), 1u);
}

TEST(StreamTrackerTest, PeakTracksHighWaterMark) {
  StreamTracker tracker(SimTime::from_sec(1));
  TcpFlags syn;
  syn.syn = true;
  for (int i = 0; i < 5; ++i) {
    tracker.observe(stream_packet(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2),
                                  static_cast<std::uint16_t>(1000 + i), 80,
                                  SimTime::zero(), syn));
  }
  tracker.expire(SimTime::from_sec(5));
  EXPECT_EQ(tracker.active_streams(), 0u);
  EXPECT_EQ(tracker.peak_streams(), 5u);
  EXPECT_EQ(tracker.total_streams_seen(), 5u);
}

TEST(StreamTrackerTest, CountsPacketsAndBytes) {
  StreamTracker tracker;
  TcpFlags ack;
  ack.ack = true;
  const Packet p1 = stream_packet(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1,
                                  2, SimTime::zero(), ack, "abcd");
  tracker.observe(p1);
  const StreamInfo& info = tracker.observe(stream_packet(
      Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 1, 2, SimTime::from_ms(1), ack,
      "efgh"));
  EXPECT_EQ(info.packets, 2u);
  EXPECT_EQ(info.bytes, 2u * p1.wire_bytes());
}

TEST(StreamTrackerTest, FindByEitherDirection) {
  StreamTracker tracker;
  TcpFlags syn;
  syn.syn = true;
  const Packet p = stream_packet(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 4000,
                                 80, SimTime::zero(), syn);
  tracker.observe(p);
  EXPECT_NE(tracker.find(p.tuple), nullptr);
  FiveTuple reversed = p.tuple;
  std::swap(reversed.src_ip, reversed.dst_ip);
  std::swap(reversed.src_port, reversed.dst_port);
  EXPECT_NE(tracker.find(reversed), nullptr);
  FiveTuple other = p.tuple;
  other.dst_port = 99;
  EXPECT_EQ(tracker.find(other), nullptr);
}

}  // namespace
}  // namespace idseval::netsim
