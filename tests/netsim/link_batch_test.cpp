// Batch-boundary tests for the link's coalesced delivery path: same-tick
// arrivals must form one delivery group, adjacent-tick arrivals must not,
// and the coalescing-off reference path must produce identical stats and
// delivery order — the equivalence the golden-hash test relies on.
#include "netsim/link.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace idseval::netsim {
namespace {

Packet test_packet(Simulator& sim, std::uint32_t payload_bytes,
                   std::uint64_t seq = 0) {
  FiveTuple tuple;
  tuple.src_ip = Ipv4(10, 0, 0, 1);
  tuple.dst_ip = Ipv4(10, 0, 0, 2);
  Packet p = make_packet(sim.next_packet_id(), 1, sim.now(), tuple,
                         std::string(payload_bytes, 'x'));
  p.seq = seq;
  return p;
}

TEST(LinkBatchTest, SameTickArrivalsCoalesceIntoOneBatch) {
  Simulator sim;
  // Zero bandwidth: no serialization delay, so back-to-back sends all
  // arrive on the same tick (latency only).
  Link link(sim, "l", 0.0, SimTime::from_us(10), 16);
  std::vector<std::size_t> batch_sizes;
  link.set_deliver_batch([&](const Packet*, std::size_t n) {
    batch_sizes.push_back(n);
  });
  for (std::uint64_t i = 0; i < 5; ++i) link.send(test_packet(sim, 100, i));
  sim.run_until();
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes[0], 5u);
  EXPECT_EQ(link.stats().delivered_packets, 5u);
}

TEST(LinkBatchTest, AdjacentTickArrivalsStaySeparate) {
  Simulator sim;
  // Finite bandwidth: serialization separates arrival ticks, so each
  // packet is its own singleton group.
  Link link(sim, "l", 8e6, SimTime::zero(), 16);
  std::vector<std::size_t> batch_sizes;
  link.set_deliver_batch([&](const Packet*, std::size_t n) {
    batch_sizes.push_back(n);
  });
  for (int i = 0; i < 3; ++i) link.send(test_packet(sim, 960));
  sim.run_until();
  ASSERT_EQ(batch_sizes.size(), 3u);
  for (const std::size_t n : batch_sizes) EXPECT_EQ(n, 1u);
}

TEST(LinkBatchTest, BatchPreservesIntraTickSeqOrder) {
  Simulator sim;
  Link link(sim, "l", 0.0, SimTime::from_us(10), 16);
  std::vector<std::uint64_t> seqs;
  link.set_deliver_batch([&](const Packet* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) seqs.push_back(p[i].seq);
  });
  for (std::uint64_t i = 0; i < 6; ++i) link.send(test_packet(sim, 64, i));
  sim.run_until();
  ASSERT_EQ(seqs.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(seqs[i], i);
}

TEST(LinkBatchTest, CoalescingOffMatchesBatchedStatsAndOrder) {
  // Identical traffic through a coalescing link and through the
  // single-packet reference path: byte/packet stats and the delivered
  // order must agree; only the batch granularity differs.
  auto run = [](bool coalesce, std::vector<std::uint64_t>& order,
                std::vector<std::size_t>& sizes) {
    Simulator sim;
    Link link(sim, "l", 0.0, SimTime::from_us(10), 16);
    link.set_coalescing(coalesce);
    link.set_deliver_batch([&](const Packet* p, std::size_t n) {
      sizes.push_back(n);
      for (std::size_t i = 0; i < n; ++i) order.push_back(p[i].seq);
    });
    for (std::uint64_t i = 0; i < 4; ++i) link.send(test_packet(sim, 200, i));
    sim.run_until();
    return link.stats();
  };
  std::vector<std::uint64_t> on_order, off_order;
  std::vector<std::size_t> on_sizes, off_sizes;
  const LinkStats on = run(true, on_order, on_sizes);
  const LinkStats off = run(false, off_order, off_sizes);
  EXPECT_EQ(on.offered_packets, off.offered_packets);
  EXPECT_EQ(on.delivered_packets, off.delivered_packets);
  EXPECT_EQ(on.delivered_bytes, off.delivered_bytes);
  EXPECT_EQ(on_order, off_order);
  ASSERT_EQ(on_sizes.size(), 1u);  // one coalesced group
  EXPECT_EQ(on_sizes[0], 4u);
  ASSERT_EQ(off_sizes.size(), 4u);  // four singleton groups
  for (const std::size_t n : off_sizes) EXPECT_EQ(n, 1u);
}

TEST(LinkBatchTest, SingletonGroupPrefersBatchCallback) {
  Simulator sim;
  Link link(sim, "l", 1e9, SimTime::zero(), 8);
  int batch_calls = 0;
  int single_calls = 0;
  link.set_deliver([&](const Packet&) { ++single_calls; });
  link.set_deliver_batch([&](const Packet*, std::size_t n) {
    ++batch_calls;
    EXPECT_EQ(n, 1u);
  });
  link.send(test_packet(sim, 100));
  sim.run_until();
  EXPECT_EQ(batch_calls, 1);
  EXPECT_EQ(single_calls, 0);
}

TEST(LinkBatchTest, LazySlotReleaseFreesQueueBeforeDelivery) {
  Simulator sim;
  // 1000B at 8 Mb/s = 1 ms serialization; 10 ms propagation. Slots free
  // at tx-done (1 ms, 2 ms) even though delivery happens at 11/12 ms.
  Link link(sim, "l", 8e6, SimTime::from_ms(10), /*queue=*/2);
  int delivered = 0;
  link.set_deliver([&](const Packet&) { ++delivered; });
  link.send(test_packet(sim, 960));
  link.send(test_packet(sim, 960));
  EXPECT_FALSE(link.send(test_packet(sim, 960)));  // full
  bool accepted_mid_flight = false;
  sim.schedule_in(SimTime::from_ms(5), [&] {
    // Both tx-done times have passed; nothing has been delivered yet.
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(link.queue_depth(), 0u);
    accepted_mid_flight = link.send(test_packet(sim, 960));
  });
  sim.run_until();
  EXPECT_TRUE(accepted_mid_flight);
  EXPECT_EQ(delivered, 3);
}

TEST(LinkBatchTest, CoalescedGroupAccountsBytesOnce) {
  Simulator sim;
  Link link(sim, "l", 0.0, SimTime::from_us(1), 16);
  std::size_t seen = 0;
  link.set_deliver_batch([&](const Packet*, std::size_t n) { seen += n; });
  std::uint64_t expected_bytes = 0;
  for (std::uint32_t bytes : {64u, 512u, 1400u}) {
    const Packet p = test_packet(sim, bytes);
    expected_bytes += p.wire_bytes();
    link.send(p);
  }
  sim.run_until();
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(link.stats().delivered_packets, 3u);
  EXPECT_EQ(link.stats().delivered_bytes, expected_bytes);
}

}  // namespace
}  // namespace idseval::netsim
