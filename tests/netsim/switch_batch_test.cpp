// Batch-boundary tests for the switch's coalesced fan-out: a same-tick
// batch must produce the same stats, mirror copies, and forwarded packets
// as the per-packet path, with mirror/stat updates hoisted to one per
// batch; blocked sources force the per-packet fallback.
#include "netsim/switch.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace idseval::netsim {
namespace {

Packet make(Ipv4 src, Ipv4 dst, std::uint64_t seq = 0) {
  FiveTuple t;
  t.src_ip = src;
  t.dst_ip = dst;
  t.src_port = 4000;
  t.dst_port = 80;
  Packet p = make_packet(1, 1, SimTime::zero(), t, "x");
  p.seq = seq;
  return p;
}

class SwitchBatchTest : public ::testing::Test {
 protected:
  SwitchBatchTest() : sw_(sim_) {}

  Simulator sim_;
  Switch sw_;
};

TEST_F(SwitchBatchTest, BatchMatchesPerPacketStats) {
  Simulator sim2;
  Switch reference(sim2);
  Link egress_a(sim_, "a", 1e9, SimTime::zero(), 64);
  Link egress_b(sim2, "b", 1e9, SimTime::zero(), 64);
  egress_a.set_deliver([](const Packet&) {});
  egress_b.set_deliver([](const Packet&) {});
  sw_.attach(Ipv4(10, 0, 0, 2), &egress_a);
  reference.attach(Ipv4(10, 0, 0, 2), &egress_b);
  int batch_mirrored = 0;
  int ref_mirrored = 0;
  sw_.add_mirror([&](const Packet&) { ++batch_mirrored; });
  reference.add_mirror([&](const Packet&) { ++ref_mirrored; });

  std::vector<Packet> batch;
  for (std::uint64_t i = 0; i < 4; ++i) {
    batch.push_back(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), i));
  }
  sw_.receive_batch(batch.data(), batch.size());
  for (const Packet& p : batch) reference.receive(p);
  sim_.run_until();
  sim2.run_until();

  EXPECT_EQ(sw_.stats().forwarded, reference.stats().forwarded);
  EXPECT_EQ(sw_.stats().mirrored, reference.stats().mirrored);
  EXPECT_EQ(sw_.stats().no_route, reference.stats().no_route);
  EXPECT_EQ(batch_mirrored, ref_mirrored);
  EXPECT_EQ(egress_a.stats().delivered_packets,
            egress_b.stats().delivered_packets);
}

TEST_F(SwitchBatchTest, EmptyMirrorBatchStillForwards) {
  Link egress(sim_, "egress", 1e9, SimTime::zero(), 64);
  int delivered = 0;
  egress.set_deliver([&](const Packet&) { ++delivered; });
  sw_.attach(Ipv4(10, 0, 0, 2), &egress);
  std::vector<Packet> batch;
  for (std::uint64_t i = 0; i < 3; ++i) {
    batch.push_back(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), i));
  }
  sw_.receive_batch(batch.data(), batch.size());
  sim_.run_until();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(sw_.stats().forwarded, 3u);
  EXPECT_EQ(sw_.stats().mirrored, 0u);
}

TEST_F(SwitchBatchTest, BatchMirrorSeesWholeBatchOnce) {
  std::vector<std::size_t> batch_sizes;
  int per_packet_copies = 0;
  sw_.add_mirror_batch([&](const Packet*, std::size_t n) {
    batch_sizes.push_back(n);
  });
  sw_.add_mirror([&](const Packet&) { ++per_packet_copies; });
  std::vector<Packet> batch;
  for (std::uint64_t i = 0; i < 5; ++i) {
    batch.push_back(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 9), i));
  }
  sw_.receive_batch(batch.data(), batch.size());
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes[0], 5u);
  EXPECT_EQ(per_packet_copies, 5);
  // mirrored counts copies: 2 mirrors x 5 packets.
  EXPECT_EQ(sw_.stats().mirrored, 10u);
}

TEST_F(SwitchBatchTest, SingletonBatchTakesLegacyPath) {
  std::vector<std::size_t> batch_sizes;
  sw_.add_mirror_batch([&](const Packet*, std::size_t n) {
    batch_sizes.push_back(n);
  });
  const Packet p = make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 9));
  sw_.receive_batch(&p, 1);
  ASSERT_EQ(batch_sizes.size(), 1u);
  EXPECT_EQ(batch_sizes[0], 1u);
  EXPECT_EQ(sw_.stats().mirrored, 1u);
}

TEST_F(SwitchBatchTest, BlockedSourceFallsBackPerPacket) {
  Link egress(sim_, "egress", 1e9, SimTime::zero(), 64);
  egress.set_deliver([](const Packet&) {});
  sw_.attach(Ipv4(10, 0, 0, 2), &egress);
  int mirrored = 0;
  sw_.add_mirror([&](const Packet&) { ++mirrored; });
  sw_.block_source(Ipv4(198, 51, 100, 1));
  std::vector<Packet> batch;
  batch.push_back(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 0));
  batch.push_back(make(Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 2), 1));
  batch.push_back(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 2));
  sw_.receive_batch(batch.data(), batch.size());
  sim_.run_until();
  // Blocked packet dropped at ingress: not mirrored, not forwarded.
  EXPECT_EQ(sw_.stats().blocked, 1u);
  EXPECT_EQ(sw_.stats().forwarded, 2u);
  EXPECT_EQ(mirrored, 2);
}

TEST_F(SwitchBatchTest, NoRouteCountedPerPacketWithinBatch) {
  Link egress(sim_, "egress", 1e9, SimTime::zero(), 64);
  int delivered = 0;
  egress.set_deliver([&](const Packet&) { ++delivered; });
  sw_.attach(Ipv4(10, 0, 0, 2), &egress);
  std::vector<Packet> batch;
  batch.push_back(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 0));
  batch.push_back(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 99), 1));
  batch.push_back(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 2));
  sw_.receive_batch(batch.data(), batch.size());
  sim_.run_until();
  EXPECT_EQ(sw_.stats().no_route, 1u);
  EXPECT_EQ(sw_.stats().forwarded, 2u);
  EXPECT_EQ(delivered, 2);
}

TEST_F(SwitchBatchTest, RouteCacheHandlesAlternatingDestinations) {
  Link link_a(sim_, "a", 1e9, SimTime::zero(), 64);
  Link link_b(sim_, "b", 1e9, SimTime::zero(), 64);
  int to_a = 0;
  int to_b = 0;
  link_a.set_deliver([&](const Packet&) { ++to_a; });
  link_b.set_deliver([&](const Packet&) { ++to_b; });
  sw_.attach(Ipv4(10, 0, 0, 2), &link_a);
  sw_.attach(Ipv4(10, 0, 0, 3), &link_b);
  std::vector<Packet> batch;
  for (std::uint64_t i = 0; i < 6; ++i) {
    const Ipv4 dst = i % 2 == 0 ? Ipv4(10, 0, 0, 2) : Ipv4(10, 0, 0, 3);
    batch.push_back(make(Ipv4(10, 0, 0, 1), dst, i));
  }
  sw_.receive_batch(batch.data(), batch.size());
  sim_.run_until();
  EXPECT_EQ(to_a, 3);
  EXPECT_EQ(to_b, 3);
  EXPECT_EQ(sw_.stats().forwarded, 6u);
}

TEST_F(SwitchBatchTest, InlineHookSeesEveryBatchedPacket) {
  Link egress(sim_, "egress", 1e9, SimTime::zero(), 64);
  int delivered = 0;
  egress.set_deliver([&](const Packet&) { ++delivered; });
  sw_.attach(Ipv4(10, 0, 0, 2), &egress);
  int inline_seen = 0;
  sw_.set_inline_hook(
      [&](const Packet& p, std::function<void(const Packet&)> fwd) {
        ++inline_seen;
        fwd(p);
      });
  std::vector<Packet> batch;
  for (std::uint64_t i = 0; i < 4; ++i) {
    batch.push_back(make(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), i));
  }
  sw_.receive_batch(batch.data(), batch.size());
  sim_.run_until();
  EXPECT_EQ(inline_seen, 4);
  EXPECT_EQ(delivered, 4);
}

}  // namespace
}  // namespace idseval::netsim
