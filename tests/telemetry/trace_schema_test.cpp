// Doc-level trace event schema validation: known types with the exact
// field lists the writers emit, kind checking, unknown-key rejection,
// and the nested registry (counters/stages/log2_buckets) shape.
#include <stdexcept>

#include <gtest/gtest.h>

#include "results/doc.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace idseval::telemetry {
namespace {

results::Doc registry_doc() {
  Registry registry;
  registry.counter("harness.runs").increment();
  registry.counter("scan_cache.hits").increment(3);
  registry.counter("scan_cache.bytes_saved").increment(512);
  registry.latency("sensor.service").record(0.002);
  registry.latency("sensor.service").record(0.0);
  return to_doc(registry);
}

results::Doc evaluation_event() {
  results::Doc event = results::Doc::object();
  event.set("type", "evaluation")
      .set("product", "SentryNID")
      .set("profile", "rt_cluster")
      .set("seed", std::uint64_t{42})
      .set("telemetry", registry_doc());
  return event;
}

TEST(TraceSchemaTest, AcceptsEveryEmittedEventShape) {
  EXPECT_NO_THROW(check_trace_event(evaluation_event()));

  results::Doc probes = evaluation_event();
  probes.set("type", "load_probes");
  EXPECT_NO_THROW(check_trace_event(probes));

  results::Doc cell = results::Doc::object();
  cell.set("type", "cell")
      .set("index", 3u)
      .set("product", "FlowHunt")
      .set("profile", "ecommerce")
      .set("sensitivity", 0.4)
      .set("replicate", 1u)
      .set("seed", std::uint64_t{99})
      .set("ok", true)
      .set("error", "")
      .set("telemetry", registry_doc());
  EXPECT_NO_THROW(check_trace_event(cell));

  results::Doc begin = results::Doc::object();
  begin.set("type", "campaign_begin")
      .set("name", "ci")
      .set("cells", 8u)
      .set("jobs", 2u);
  EXPECT_NO_THROW(check_trace_event(begin));

  results::Doc end = results::Doc::object();
  end.set("type", "campaign_end")
      .set("name", "ci")
      .set("executed", 8u)
      .set("failed", 0u)
      .set("telemetry", registry_doc());
  EXPECT_NO_THROW(check_trace_event(end));

  results::Doc footer = results::Doc::object();
  footer.set("type", "trace_summary")
      .set("emitted", 10u)
      .set("dropped", 0u);
  EXPECT_NO_THROW(check_trace_event(footer));
}

TEST(TraceSchemaTest, SurvivesAJsonRoundTrip) {
  // Serialized traces re-parse integral doubles as integers; the schema
  // must accept what parse_json hands back, not just what set() built.
  const results::Doc reparsed =
      results::parse_json(results::to_json(evaluation_event()));
  EXPECT_NO_THROW(check_trace_event(reparsed));
}

TEST(TraceSchemaTest, RejectsUnknownType) {
  results::Doc event = results::Doc::object();
  event.set("type", "mystery");
  EXPECT_THROW(check_trace_event(event), std::invalid_argument);
}

TEST(TraceSchemaTest, RejectsMissingType) {
  EXPECT_THROW(check_trace_event(results::Doc::object()),
               std::invalid_argument);
  EXPECT_THROW(check_trace_event(results::Doc("not an object")),
               std::invalid_argument);
}

TEST(TraceSchemaTest, RejectsUnknownKeys) {
  results::Doc event = evaluation_event();
  event.set("extra", 1);
  EXPECT_THROW(check_trace_event(event), std::invalid_argument);
}

TEST(TraceSchemaTest, RejectsMissingRequiredField) {
  results::Doc event = results::Doc::object();
  event.set("type", "trace_summary").set("emitted", 10u);  // no dropped
  EXPECT_THROW(check_trace_event(event), std::invalid_argument);
}

TEST(TraceSchemaTest, RejectsKindMismatch) {
  results::Doc event = evaluation_event();
  event.set("seed", "forty-two");
  EXPECT_THROW(check_trace_event(event), std::invalid_argument);

  results::Doc negative = results::Doc::object();
  negative.set("type", "trace_summary")
      .set("emitted", -1)
      .set("dropped", 0u);
  EXPECT_THROW(check_trace_event(negative), std::invalid_argument);
}

TEST(TraceSchemaTest, RejectsCountersOutsideTheNamingScheme) {
  // Counter names follow "<stage>.<event>" with a known stage prefix; a
  // writer inventing "made_up.counter" must fail the schema check.
  Registry registry;
  registry.counter("made_up.counter").increment();
  results::Doc event = evaluation_event();
  event.set("telemetry", to_doc(registry));
  EXPECT_THROW(check_trace_event(event), std::invalid_argument);
}

TEST(TraceSchemaTest, RejectsMalformedRegistry) {
  results::Doc event = evaluation_event();
  event.set("telemetry", results::Doc::object());  // no counters/stages
  EXPECT_THROW(check_trace_event(event), std::invalid_argument);

  // A stage missing its histogram buckets is malformed too.
  results::Doc stage = results::Doc::object();
  stage.set("count", 1u)
      .set("mean_sec", 0.1)
      .set("min_sec", 0.1)
      .set("max_sec", 0.1)
      .set("p50_sec", 0.1)
      .set("p99_sec", 0.1)
      .set("zeros", 0u);
  results::Doc stages = results::Doc::object();
  stages.set("sensor.service", std::move(stage));
  results::Doc registry = results::Doc::object();
  registry.set("counters", results::Doc::object())
      .set("stages", std::move(stages));
  results::Doc bad = evaluation_event();
  bad.set("telemetry", std::move(registry));
  EXPECT_THROW(check_trace_event(bad), std::invalid_argument);
}

TEST(TraceSchemaTest, RejectsNonNumericBucketKeys) {
  // Rebuild the registry Doc with a corrupted bucket exponent key.
  results::Doc buckets = results::Doc::object();
  buckets.set("not-a-number", 3u);
  results::Doc stage = results::Doc::object();
  stage.set("count", 1u)
      .set("mean_sec", 0.1)
      .set("min_sec", 0.1)
      .set("max_sec", 0.1)
      .set("p50_sec", 0.1)
      .set("p99_sec", 0.1)
      .set("zeros", 0u)
      .set("log2_buckets", std::move(buckets));
  results::Doc stages = results::Doc::object();
  stages.set("sensor.service", std::move(stage));
  results::Doc registry = results::Doc::object();
  registry.set("counters", results::Doc::object())
      .set("stages", std::move(stages));
  results::Doc event = evaluation_event();
  event.set("telemetry", std::move(registry));
  EXPECT_THROW(check_trace_event(event), std::invalid_argument);
}

}  // namespace
}  // namespace idseval::telemetry
