#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace idseval::telemetry {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(TraceSinkTest, WritesLinesAndFooter) {
  const std::string path = temp_path("idseval_trace_basic.jsonl");
  {
    TraceSink sink(path);
    sink.emit(std::string("{\"type\":\"a\"}"));
    sink.emit(std::string("{\"type\":\"b\"}"));
    sink.close();
    EXPECT_EQ(sink.emitted(), 2u);
    EXPECT_EQ(sink.dropped(), 0u);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "{\"type\":\"a\"}");
  EXPECT_EQ(lines[1], "{\"type\":\"b\"}");
  EXPECT_EQ(lines[2],
            "{\"type\":\"trace_summary\",\"emitted\":2,\"dropped\":0}");
  for (const auto& line : lines) {
    EXPECT_TRUE(validate_json_line(line)) << line;
  }
  std::remove(path.c_str());
}

TEST(TraceSinkTest, DropsWhenBufferFullAndCountsDrops) {
  const std::string path = temp_path("idseval_trace_drops.jsonl");
  {
    // Synchronous mode: nothing drains between emits, so the drop
    // accounting is exact.
    TraceSink sink(path, /*capacity_lines=*/2, /*background=*/false);
    sink.emit(std::string("{\"n\":1}"));
    sink.emit(std::string("{\"n\":2}"));
    sink.emit(std::string("{\"n\":3}"));  // buffer full: dropped
    EXPECT_EQ(sink.emitted(), 2u);
    EXPECT_EQ(sink.dropped(), 1u);
    sink.flush();
    sink.emit(std::string("{\"n\":4}"));  // room again after flush
    sink.close();
    EXPECT_EQ(sink.emitted(), 3u);
    EXPECT_EQ(sink.dropped(), 1u);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines.back(),
            "{\"type\":\"trace_summary\",\"emitted\":3,\"dropped\":1}");
  std::remove(path.c_str());
}

TEST(TraceSinkTest, BackgroundWriterCountsDropsWhilePaused) {
  const std::string path = temp_path("idseval_trace_bg_drops.jsonl");
  {
    TraceSink sink(path, /*capacity_lines=*/1, /*background=*/true);
    ASSERT_TRUE(sink.background());
    sink.pause_writer();  // hold the writer: drops become deterministic
    sink.emit(std::string("{\"n\":1}"));
    sink.emit(std::string("{\"n\":2}"));  // 1-slot buffer full: dropped
    sink.emit(std::string("{\"n\":3}"));  // dropped
    EXPECT_EQ(sink.emitted(), 1u);
    EXPECT_EQ(sink.dropped(), 2u);
    sink.resume_writer();
    sink.close();
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"n\":1}");
  EXPECT_EQ(lines[1],
            "{\"type\":\"trace_summary\",\"emitted\":1,\"dropped\":2}");
  std::remove(path.c_str());
}

TEST(TraceSinkTest, BackgroundMatchesSynchronousByteForByte) {
  const std::string sync_path = temp_path("idseval_trace_mode_sync.jsonl");
  const std::string bg_path = temp_path("idseval_trace_mode_bg.jsonl");
  const auto drive = [](TraceSink& sink) {
    for (int i = 0; i < 100; ++i) {
      results::Doc event = results::Doc::object();
      event.set("type", "cell").set("index", i).set("ok", i % 3 != 0);
      sink.emit(event);
      if (i % 10 == 9) sink.flush();  // cell-boundary pattern
    }
    sink.close();
  };
  {
    TraceSink sink(sync_path, TraceSink::kDefaultCapacity,
                   /*background=*/false);
    drive(sink);
  }
  {
    TraceSink sink(bg_path, TraceSink::kDefaultCapacity,
                   /*background=*/true);
    drive(sink);
  }
  const auto sync_lines = read_lines(sync_path);
  const auto bg_lines = read_lines(bg_path);
  ASSERT_EQ(sync_lines.size(), 101u);
  EXPECT_EQ(sync_lines, bg_lines);
  std::remove(sync_path.c_str());
  std::remove(bg_path.c_str());
}

TEST(TraceSinkTest, CloseIsIdempotentAndEmitAfterCloseDrops) {
  const std::string path = temp_path("idseval_trace_close.jsonl");
  TraceSink sink(path);
  sink.emit(std::string("{}"));
  sink.close();
  sink.close();
  sink.emit(std::string("{}"));  // after close: counted as drop, file kept
  EXPECT_EQ(sink.dropped(), 1u);
  EXPECT_EQ(read_lines(path).size(), 2u);
  std::remove(path.c_str());
}

TEST(TraceSinkTest, ThrowsWhenPathUnwritable) {
  EXPECT_THROW(TraceSink("/nonexistent-dir/trace.jsonl"),
               std::runtime_error);
}

TEST(TraceJsonTest, StageSummaryRoundTripsKeys) {
  StageSummary s;
  s.count = 4;
  s.mean_sec = 0.125;
  s.p99_sec = 0.25;
  s.max_sec = 0.5;
  const std::string json = to_json(s);
  EXPECT_EQ(json,
            "{\"count\":4,\"mean_sec\":0.125,\"p99_sec\":0.25,"
            "\"max_sec\":0.5}");
  EXPECT_TRUE(validate_json_line(json));
}

TEST(TraceJsonTest, SnapshotSerializesAllStages) {
  PipelineSnapshot snap;
  snap.tapped = 10;
  snap.sensor_offered = 9;
  snap.sensor_service.count = 9;
  const std::string json = to_json(snap);
  EXPECT_TRUE(validate_json_line(json));
  EXPECT_NE(json.find("\"tapped\":10"), std::string::npos);
  EXPECT_NE(json.find("\"lb_wait\":{"), std::string::npos);
  EXPECT_NE(json.find("\"monitor_alert\":{"), std::string::npos);
}

TEST(TraceJsonTest, RegistryDumpIncludesHistogramBuckets) {
  Registry reg;
  reg.counter("stage.events").increment(12);
  LatencyStat& l = reg.latency("stage.wait");
  l.record(1e-3);
  l.record(2e-3);
  l.record(0.0);
  const std::string json = to_json(reg);
  EXPECT_TRUE(validate_json_line(json));
  EXPECT_NE(json.find("\"stage.events\":12"), std::string::npos);
  EXPECT_NE(json.find("\"log2_buckets\":{"), std::string::npos);
  EXPECT_NE(json.find("\"zeros\":1"), std::string::npos);
  // 1e-3 lands in the 2^-10 bucket ([0.977ms, 1.95ms)).
  EXPECT_NE(json.find("\"-10\":1"), std::string::npos);
}

TEST(TraceJsonTest, EscapesControlCharactersAndQuotes) {
  const std::string escaped = json_escape("a\"b\\c\nd");
  EXPECT_EQ(escaped, "a\\\"b\\\\c\\nd");
}

TEST(ValidateJsonLineTest, AcceptsCompleteValues) {
  EXPECT_TRUE(validate_json_line("{}"));
  EXPECT_TRUE(validate_json_line("{\"a\":[1,2.5,-3e-2],\"b\":null}"));
  EXPECT_TRUE(validate_json_line("  {\"x\":\"y\\u00e9\"}  "));
  EXPECT_TRUE(validate_json_line("true"));
  EXPECT_TRUE(validate_json_line("-0.5"));
}

TEST(ValidateJsonLineTest, RejectsMalformedInput) {
  EXPECT_FALSE(validate_json_line(""));
  EXPECT_FALSE(validate_json_line("{"));
  EXPECT_FALSE(validate_json_line("{\"a\":}"));
  EXPECT_FALSE(validate_json_line("{\"a\":1,}"));
  EXPECT_FALSE(validate_json_line("{\"a\":1} trailing"));
  EXPECT_FALSE(validate_json_line("{\"a\":\"unterminated}"));
  EXPECT_FALSE(validate_json_line("{\"a\":01x}"));
  EXPECT_FALSE(validate_json_line("nulL"));
  EXPECT_FALSE(validate_json_line("{\"a\":\"bad\\q\"}"));
}

}  // namespace
}  // namespace idseval::telemetry
