#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <thread>
#include <utility>

namespace idseval::telemetry {
namespace {

TEST(RegistryTest, CounterHandleIsStableAndAccumulates) {
  Registry reg;
  Counter& c = reg.counter("stage.events");
  c.increment();
  c.increment(4);
  EXPECT_EQ(reg.counter("stage.events").value(), 5u);
  EXPECT_EQ(&reg.counter("stage.events"), &c);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(RegistryTest, LatencyStatRecordsMomentsAndHistogram) {
  Registry reg;
  LatencyStat& l = reg.latency("stage.wait");
  l.record(1e-3);
  l.record(3e-3);
  EXPECT_EQ(l.stats().count(), 2u);
  EXPECT_DOUBLE_EQ(l.stats().mean(), 2e-3);
  EXPECT_DOUBLE_EQ(l.stats().max(), 3e-3);
  EXPECT_EQ(l.histogram().count(), 2u);
  l.reset();
  EXPECT_EQ(l.stats().count(), 0u);
  EXPECT_EQ(l.histogram().count(), 0u);
}

TEST(RegistryTest, FindDoesNotCreate) {
  Registry reg;
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.find_latency("absent"), nullptr);
  EXPECT_TRUE(reg.empty());
  reg.counter("present");
  EXPECT_NE(reg.find_counter("present"), nullptr);
  EXPECT_FALSE(reg.empty());
}

TEST(ScopedRegistryTest, InstallsAndRestores) {
  EXPECT_EQ(current(), nullptr);
  Registry outer;
  {
    ScopedRegistry outer_scope(&outer);
    EXPECT_EQ(current(), &outer);
    Registry inner;
    {
      ScopedRegistry inner_scope(&inner);
      EXPECT_EQ(current(), &inner);
    }
    EXPECT_EQ(current(), &outer);
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(ScopedRegistryTest, IsThreadLocal) {
  Registry reg;
  ScopedRegistry scope(&reg);
  Registry* seen_on_thread = &reg;  // sentinel, overwritten below
  std::thread([&] { seen_on_thread = current(); }).join();
  EXPECT_EQ(seen_on_thread, nullptr);
  EXPECT_EQ(current(), &reg);
}

TEST(HandleTest, NullHandlesAreNoOps) {
  ASSERT_EQ(current(), nullptr);
  Counter* c = counter_handle("anything");
  LatencyStat* l = latency_handle("anything");
  EXPECT_EQ(c, nullptr);
  EXPECT_EQ(l, nullptr);
  bump(c);
  record(l, 1.0);
  reset(c);
  reset(l);
  count("anything");  // no registry installed: silently discarded
}

TEST(HandleTest, ResolveAgainstCurrentRegistry) {
  Registry reg;
  ScopedRegistry scope(&reg);
  Counter* c = counter_handle("x.count");
  LatencyStat* l = latency_handle("x.wait");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(l, nullptr);
  bump(c, 3);
  record(l, 0.5);
  count("x.count", 2);
  EXPECT_EQ(reg.counter("x.count").value(), 5u);
  EXPECT_EQ(reg.latency("x.wait").stats().count(), 1u);
}

TEST(RegistryTest, MergeAddsCountersAndLatencies) {
  Registry a;
  Registry b;
  a.counter("n").increment(2);
  b.counter("n").increment(3);
  b.counter("only_b").increment(1);
  a.latency("w").record(1.0);
  b.latency("w").record(3.0);
  a.merge_from(b);
  EXPECT_EQ(a.counter("n").value(), 5u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);
  EXPECT_EQ(a.latency("w").stats().count(), 2u);
  EXPECT_DOUBLE_EQ(a.latency("w").stats().mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.latency("w").stats().max(), 3.0);
  EXPECT_EQ(a.latency("w").histogram().count(), 2u);
}

TEST(RegistryTest, MergeOrderInvariantForTotals) {
  Registry left;
  Registry right;
  Registry parts[2];
  parts[0].counter("c").increment(7);
  parts[0].latency("l").record(0.25);
  parts[1].counter("c").increment(5);
  parts[1].latency("l").record(0.75);
  left.merge_from(parts[0]);
  left.merge_from(parts[1]);
  right.merge_from(parts[1]);
  right.merge_from(parts[0]);
  EXPECT_EQ(left.counter("c").value(), right.counter("c").value());
  EXPECT_EQ(left.latency("l").stats().count(),
            right.latency("l").stats().count());
  EXPECT_DOUBLE_EQ(left.latency("l").stats().mean(),
                   right.latency("l").stats().mean());
}

TEST(RegistryTest, FixedMergeOrderIsBitReproducible) {
  // Running-moment merges do floating-point arithmetic, so the combined
  // MEAN of three parts is only guaranteed bit-identical when the parts
  // merge in the same order — which is why the sharded engine merges
  // per-shard registries in shard-index order. Two same-order merges
  // must agree to the last bit.
  auto build = [] {
    Registry parts[3];
    for (int p = 0; p < 3; ++p) {
      for (int i = 0; i < 50; ++i) {
        parts[p].latency("l").record(0.1 * (p + 1) + 1e-3 * i);
        parts[p].counter("c").increment(static_cast<std::uint64_t>(p + i));
      }
    }
    Registry total;
    for (const Registry& part : parts) total.merge_from(part);
    return std::pair{total.counter("c").value(),
                     total.latency("l").stats().mean()};
  };
  const auto a = build();
  const auto b = build();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.second),
            std::bit_cast<std::uint64_t>(b.second));
}

TEST(RegistryTest, ResetAfterMergeKeepsHandlesLive) {
  // The sharded testbed reuses per-shard registries across runs: merge
  // into the ambient registry, then reset in place. Handles taken before
  // the reset must keep recording into the same instruments.
  Registry shard;
  Counter& c = shard.counter("x");
  c.increment(4);
  Registry total;
  total.merge_from(shard);
  shard.reset();
  EXPECT_EQ(shard.counter("x").value(), 0u);
  c.increment(2);
  EXPECT_EQ(shard.counter("x").value(), 2u);
  EXPECT_EQ(total.counter("x").value(), 4u);
}

TEST(SnapshotTest, ReadsPipelineInstruments) {
  Registry reg;
  reg.counter(names::kPipelineTapped).increment(100);
  reg.counter(names::kSensorOffered).increment(90);
  reg.counter(names::kSensorDetections).increment(7);
  reg.counter(names::kMonitorAlerts).increment(3);
  reg.latency(names::kSensorService).record(2e-5);
  const PipelineSnapshot snap = snapshot_pipeline(reg);
  EXPECT_EQ(snap.tapped, 100u);
  EXPECT_EQ(snap.sensor_offered, 90u);
  EXPECT_EQ(snap.detections, 7u);
  EXPECT_EQ(snap.alerts, 3u);
  EXPECT_EQ(snap.sensor_service.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sensor_service.mean_sec, 2e-5);
  EXPECT_FALSE(snap.empty());
}

TEST(SnapshotTest, EmptyRegistryYieldsEmptySnapshot) {
  Registry reg;
  const PipelineSnapshot snap = snapshot_pipeline(reg);
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.tapped, 0u);
  EXPECT_EQ(snap.sensor_service.count, 0u);
}

TEST(SnapshotTest, SummaryP99NeverExceedsMax) {
  // The log2 histogram estimates quantiles at bucket midpoints; the
  // summary must clamp them so p99 <= max (0.25 sits at the bottom of
  // its [0.25, 0.5) bucket, whose midpoint is 0.375).
  LatencyStat l;
  for (int i = 0; i < 100; ++i) l.record(0.25);
  const StageSummary s = summarize(l);
  EXPECT_DOUBLE_EQ(s.max_sec, 0.25);
  EXPECT_LE(s.p99_sec, s.max_sec);
}

TEST(RenderTest, TelemetrySectionShowsCountersAndStages) {
  Registry reg;
  reg.counter(names::kPipelineTapped).increment(10);
  reg.counter(names::kSensorOffered).increment(10);
  reg.latency(names::kSensorService).record(1e-4);
  const std::string text = render_telemetry(snapshot_pipeline(reg));
  EXPECT_NE(text.find("Pipeline telemetry"), std::string::npos);
  EXPECT_NE(text.find("tapped=10"), std::string::npos);
  EXPECT_NE(text.find("sensor.service"), std::string::npos);
}

TEST(FmtDurationTest, PicksAdaptiveUnits) {
  EXPECT_EQ(fmt_duration(5e-7), "500.0ns");
  EXPECT_EQ(fmt_duration(5e-4), "500.0us");
  EXPECT_EQ(fmt_duration(5e-2), "50.00ms");
  EXPECT_EQ(fmt_duration(2.0), "2.000s");
  EXPECT_EQ(fmt_duration(0.0), "0");
}

}  // namespace
}  // namespace idseval::telemetry
