// FlowTable unit suite: insert/find/erase, rehash growth, tombstone-free
// backward-shift deletion under forced collision chains, slab recycling,
// value-pointer stability, and the probe/lookup statistics the telemetry
// layer surfaces.
#include "util/flow_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace idseval::util {
namespace {

TEST(FlowTableTest, InsertFindErase) {
  FlowTable<std::uint64_t, int> table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find(7), nullptr);

  auto [v, inserted] = table.try_emplace(7, 42);
  ASSERT_TRUE(inserted);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(table.size(), 1u);

  auto [again, inserted2] = table.try_emplace(7, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(again, v);   // existing value, not overwritten
  EXPECT_EQ(*again, 42);

  ASSERT_NE(table.find(7), nullptr);
  EXPECT_EQ(*table.find(7), 42);
  EXPECT_TRUE(table.contains(7));
  EXPECT_FALSE(table.contains(8));

  EXPECT_TRUE(table.erase(7));
  EXPECT_FALSE(table.erase(7));
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find(7), nullptr);
}

TEST(FlowTableTest, RehashGrowthKeepsAllEntries) {
  FlowTable<std::uint64_t, std::uint64_t> table;
  constexpr std::uint64_t kN = 10000;
  for (std::uint64_t k = 0; k < kN; ++k) {
    table.try_emplace(k * 2654435761u, k);
  }
  EXPECT_EQ(table.size(), kN);
  EXPECT_GE(table.stats().rehashes, 8u);  // grew from 16 well past kN
  for (std::uint64_t k = 0; k < kN; ++k) {
    const std::uint64_t* v = table.find(k * 2654435761u);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k);
  }
  // Load factor invariant: capacity * 3/4 >= size.
  EXPECT_GE(table.capacity() * 3, table.size() * 4);
}

TEST(FlowTableTest, ValuePointersStableAcrossGrowthAndErase) {
  FlowTable<std::uint64_t, std::uint64_t> table;
  std::vector<std::uint64_t*> ptrs;
  for (std::uint64_t k = 0; k < 4096; ++k) {
    ptrs.push_back(table.try_emplace(k, k).first);
  }
  // Growth rehashes the slot array but never moves slab values.
  for (std::uint64_t k = 0; k < 4096; ++k) {
    EXPECT_EQ(table.find(k), ptrs[k]);
    EXPECT_EQ(*ptrs[k], k);
  }
  // Erasing neighbours must not disturb a cached pointer either.
  for (std::uint64_t k = 0; k < 4096; k += 2) table.erase(k);
  for (std::uint64_t k = 1; k < 4096; k += 2) {
    EXPECT_EQ(table.find(k), ptrs[k]);
  }
}

// Hash that collapses everything onto a handful of home slots, forcing
// long probe chains that wrap the table — the worst case for
// backward-shift deletion.
struct ClusteringHash {
  std::uint64_t operator()(const std::uint64_t& k) const noexcept {
    return k % 3;
  }
};

TEST(FlowTableTest, BackwardShiftDeletionUnderCollisionChains) {
  FlowTable<std::uint64_t, std::uint64_t, ClusteringHash> table;
  constexpr std::uint64_t kN = 48;
  for (std::uint64_t k = 0; k < kN; ++k) table.try_emplace(k, k * 10);

  // Delete from the middle of chains in a scattered order; after every
  // deletion each survivor must still be findable (no tombstone, no
  // broken chain).
  std::set<std::uint64_t> alive;
  for (std::uint64_t k = 0; k < kN; ++k) alive.insert(k);
  const std::uint64_t kill[] = {5, 0, 17, 33, 2, 46, 13, 8, 21, 40, 1, 30};
  for (const std::uint64_t k : kill) {
    EXPECT_TRUE(table.erase(k));
    alive.erase(k);
    for (const std::uint64_t s : alive) {
      const std::uint64_t* v = table.find(s);
      ASSERT_NE(v, nullptr) << "lost " << s << " after erasing " << k;
      EXPECT_EQ(*v, s * 10);
    }
    for (const std::uint64_t d : kill) {
      if (alive.count(d) == 0) {
        EXPECT_EQ(table.find(d), nullptr);
      }
    }
  }
  // Chains stay functional for further inserts into freed space.
  for (const std::uint64_t k : kill) table.try_emplace(k, k * 10);
  EXPECT_EQ(table.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) EXPECT_TRUE(table.contains(k));
}

struct CountedValue {
  static int live;
  std::uint64_t payload = 0;
  CountedValue() { ++live; }
  explicit CountedValue(std::uint64_t p) : payload(p) { ++live; }
  CountedValue(const CountedValue& o) : payload(o.payload) { ++live; }
  ~CountedValue() { --live; }
};
int CountedValue::live = 0;

TEST(FlowTableTest, SlabRecyclingReusesErasedSlots) {
  CountedValue::live = 0;
  {
    FlowTable<std::uint64_t, CountedValue> table;
    for (std::uint64_t k = 0; k < 1000; ++k) table.try_emplace(k, k);
    EXPECT_EQ(CountedValue::live, 1000);
    const std::size_t high_water = table.slab_high_water();

    // Churn: repeated erase+insert cycles at steady-state size must not
    // grow the slab — freed slots are recycled.
    for (int round = 0; round < 20; ++round) {
      for (std::uint64_t k = 0; k < 1000; ++k) {
        table.erase(k);
        table.try_emplace(k + 100000 * (round + 1), k);
      }
      // Re-key back so the next round starts from a clean base.
      for (std::uint64_t k = 0; k < 1000; ++k) {
        table.erase(k + 100000 * (round + 1));
        table.try_emplace(k, k);
      }
    }
    EXPECT_EQ(table.size(), 1000u);
    EXPECT_EQ(CountedValue::live, 1000);
    EXPECT_LE(table.slab_high_water(), high_water + 1);

    table.clear();
    EXPECT_EQ(CountedValue::live, 0);
    EXPECT_EQ(table.size(), 0u);
    // clear() recycles the slab wholesale.
    table.try_emplace(1, 1);
    EXPECT_EQ(table.slab_high_water(), 1u);
  }
  EXPECT_EQ(CountedValue::live, 0);  // destructor drained everything
}

TEST(FlowTableTest, StatsCountProbesAndLookups) {
  FlowTable<std::uint64_t, int> table;
  table.try_emplace(1, 1);
  table.try_emplace(2, 2);
  (void)table.find(1);
  (void)table.find(999);
  const FlowTableStats& s = table.stats();
  EXPECT_EQ(s.inserts, 2u);
  EXPECT_EQ(s.lookups, 4u);  // 2 inserts + 2 finds
  EXPECT_GE(s.probes, s.lookups);
  EXPECT_GE(s.probes_per_lookup(), 1.0);

  std::uint64_t probes = 0;
  std::uint64_t lookups = 0;
  table.bind_counters(&probes, &lookups);
  (void)table.find(2);
  EXPECT_EQ(lookups, 1u);
  EXPECT_GE(probes, 1u);
}

TEST(FlowTableTest, ReservePreSizesWithoutRehashing) {
  FlowTable<std::uint64_t, int> table;
  table.reserve(10000);
  const std::uint64_t rehashes_after_reserve = table.stats().rehashes;
  for (std::uint64_t k = 0; k < 10000; ++k) table.try_emplace(k, 1);
  EXPECT_EQ(table.stats().rehashes, rehashes_after_reserve);
}

TEST(FlowTableTest, ForEachVisitsEveryLiveEntry) {
  FlowTable<std::uint64_t, std::uint64_t> table;
  for (std::uint64_t k = 0; k < 100; ++k) table.try_emplace(k, k);
  for (std::uint64_t k = 0; k < 100; k += 3) table.erase(k);
  std::set<std::uint64_t> seen;
  std::uint64_t sum = 0;
  table.for_each([&](std::uint64_t key, const std::uint64_t& v) {
    seen.insert(key);
    sum += v;
  });
  EXPECT_EQ(seen.size(), table.size());
  for (const std::uint64_t k : seen) {
    EXPECT_NE(k % 3, 0u);
    EXPECT_LT(k, 100u);
  }
  std::uint64_t expect_sum = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    if (k % 3 != 0) expect_sum += k;
  }
  EXPECT_EQ(sum, expect_sum);
}

TEST(FlowTableTest, MoveTransfersStateAndLeavesSourceEmpty) {
  FlowTable<std::uint64_t, std::string> a;
  a.try_emplace(1, "one");
  a.try_emplace(2, "two");
  FlowTable<std::uint64_t, std::string> b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  ASSERT_NE(b.find(1), nullptr);
  EXPECT_EQ(*b.find(1), "one");
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)

  FlowTable<std::uint64_t, std::string> c;
  c.try_emplace(9, "gone");  // must be destroyed by move-assign
  c = std::move(b);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.find(9), nullptr);
  EXPECT_EQ(*c.find(2), "two");
}

TEST(FlowSetTest, InsertContainsErase) {
  FlowSet<std::uint64_t> set;
  EXPECT_TRUE(set.insert(5));
  EXPECT_FALSE(set.insert(5));
  EXPECT_TRUE(set.contains(5));
  EXPECT_FALSE(set.contains(6));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.erase(5));
  EXPECT_FALSE(set.erase(5));
  EXPECT_TRUE(set.empty());
}

TEST(FlowTableTest, HashBytesMatchesAcrossCalls) {
  const unsigned char k1[] = {1, 2, 3, 4, 5};
  const unsigned char k2[] = {1, 2, 3, 4, 6};
  EXPECT_EQ(hash_bytes(k1, sizeof(k1)), hash_bytes(k1, sizeof(k1)));
  EXPECT_NE(hash_bytes(k1, sizeof(k1)), hash_bytes(k2, sizeof(k2)));
  // mix64 is a bijection, so distinct small ints stay distinct.
  EXPECT_NE(mix64(1), mix64(2));
}

}  // namespace
}  // namespace idseval::util
