#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace idseval::util {
namespace {

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, ParallelForCoversIndexSpace) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++done;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPoolTest, DestructorCompletesQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&done] { ++done; });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives and stays usable.
  std::atomic<int> ran{0};
  pool.parallel_for(10, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolTest, ParallelForEveryChunkThrowingYieldsOneException) {
  ThreadPool pool(4);
  int caught = 0;
  try {
    pool.parallel_for(64, [](std::size_t) -> void {
      throw std::invalid_argument("each");
    });
  } catch (const std::invalid_argument&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
}

TEST(ThreadPoolTest, ParallelForDrainsAllWorkBeforeRethrowing) {
  // Regression: parallel_for used to rethrow from the first future while
  // other chunks were still running against the caller's (about to be
  // destroyed) closure. After the fix, no invocation may happen once the
  // call has returned.
  ThreadPool pool(4);
  std::atomic<bool> returned{false};
  std::atomic<int> late_calls{0};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("first chunk dies fast");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (returned.load()) ++late_calls;
    });
  } catch (const std::runtime_error&) {
  }
  returned.store(true);
  pool.wait_idle();
  EXPECT_EQ(late_calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForFromResultsAggregates) {
  ThreadPool pool(4);
  std::vector<long> values(10000);
  pool.parallel_for(values.size(),
                    [&](std::size_t i) { values[i] = static_cast<long>(i); });
  const long sum = std::accumulate(values.begin(), values.end(), 0L);
  EXPECT_EQ(sum, 10000L * 9999 / 2);
}

}  // namespace
}  // namespace idseval::util
