#include "util/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace idseval::util {
namespace {

TEST(ConfigTest, ParsesKeyValues) {
  const Config cfg = Config::parse("a = 1\nb = hello\n");
  EXPECT_EQ(cfg.get_int("a"), 1);
  EXPECT_EQ(cfg.get_or("b", ""), "hello");
}

TEST(ConfigTest, IgnoresCommentsAndBlankLines) {
  const Config cfg = Config::parse(
      "# a comment\n"
      "\n"
      "key = value  # trailing comment\n"
      "   \n");
  EXPECT_EQ(cfg.get_or("key", ""), "value");
  EXPECT_EQ(cfg.entries().size(), 1u);
}

TEST(ConfigTest, TrimsWhitespace) {
  const Config cfg = Config::parse("  spaced   =   hello world \n");
  EXPECT_EQ(cfg.get_or("spaced", ""), "hello world");
}

TEST(ConfigTest, LaterKeysOverride) {
  const Config cfg = Config::parse("x = 1\nx = 2\n");
  EXPECT_EQ(cfg.get_int("x"), 2);
}

TEST(ConfigTest, ThrowsOnMissingEquals) {
  EXPECT_THROW(Config::parse("not a pair\n"), std::invalid_argument);
}

TEST(ConfigTest, ThrowsOnEmptyKey) {
  EXPECT_THROW(Config::parse("= value\n"), std::invalid_argument);
}

TEST(ConfigTest, MissingKeyReturnsNullopt) {
  const Config cfg;
  EXPECT_FALSE(cfg.get("absent").has_value());
  EXPECT_EQ(cfg.get_or("absent", "fb"), "fb");
}

TEST(ConfigTest, TypedAccessors) {
  const Config cfg = Config::parse(
      "i = -42\nd = 3.25\nbt = true\nbf = off\n");
  EXPECT_EQ(cfg.get_int("i"), -42);
  EXPECT_DOUBLE_EQ(cfg.get_double("d"), 3.25);
  EXPECT_TRUE(cfg.get_bool("bt"));
  EXPECT_FALSE(cfg.get_bool("bf"));
}

TEST(ConfigTest, IntAcceptedByDoubleAccessor) {
  const Config cfg = Config::parse("v = 5\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("v"), 5.0);
}

TEST(ConfigTest, MalformedTypedValuesThrow) {
  const Config cfg = Config::parse("i = 12x\nd = 1.2.3\nb = maybe\n");
  EXPECT_THROW(cfg.get_int("i"), std::invalid_argument);
  EXPECT_THROW(cfg.get_double("d"), std::invalid_argument);
  EXPECT_THROW(cfg.get_bool("b"), std::invalid_argument);
}

TEST(ConfigTest, OrVariantsThrowOnPresentButMalformed) {
  // Silent fallback would hide typos; present-and-bad must throw.
  const Config cfg = Config::parse("i = abc\n");
  EXPECT_THROW(cfg.get_int_or("i", 7), std::invalid_argument);
  EXPECT_EQ(cfg.get_int_or("absent", 7), 7);
}

TEST(ConfigTest, MissingTypedKeyThrows) {
  const Config cfg;
  EXPECT_THROW(cfg.get_int("absent"), std::invalid_argument);
}

TEST(ConfigTest, RoundTripSerialization) {
  Config cfg;
  cfg.set("zeta", "26");
  cfg.set("alpha", "1");
  const Config reparsed = Config::parse(cfg.to_string());
  EXPECT_EQ(reparsed.entries(), cfg.entries());
}

TEST(ConfigTest, BoolSynonyms) {
  const Config cfg = Config::parse(
      "a = TRUE\nb = Yes\nc = 1\nd = FALSE\ne = no\nf = 0\n");
  EXPECT_TRUE(cfg.get_bool("a"));
  EXPECT_TRUE(cfg.get_bool("b"));
  EXPECT_TRUE(cfg.get_bool("c"));
  EXPECT_FALSE(cfg.get_bool("d"));
  EXPECT_FALSE(cfg.get_bool("e"));
  EXPECT_FALSE(cfg.get_bool("f"));
}

}  // namespace
}  // namespace idseval::util
