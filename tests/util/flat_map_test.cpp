// FlatMap: the sorted-vector map behind the engines' tiny port windows.
// Must behave like a std::map for the operations the windows use —
// upsert via operator[], predicate pruning, size — with ascending
// deterministic iteration.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/flat_map.hpp"

namespace idseval::util {
namespace {

TEST(FlatMapTest, UpsertFindAndOrderedIteration) {
  FlatMap<std::uint16_t, int> map;
  map[443] = 1;
  map[22] = 2;
  map[8080] = 3;
  map[443] = 4;  // upsert overwrites, no duplicate key
  ASSERT_EQ(map.size(), 3u);

  ASSERT_NE(map.find(22), nullptr);
  EXPECT_EQ(*map.find(22), 2);
  EXPECT_EQ(*map.find(443), 4);
  EXPECT_EQ(map.find(80), nullptr);
  EXPECT_TRUE(map.contains(8080));
  EXPECT_FALSE(map.contains(80));

  std::vector<std::uint16_t> keys;
  for (const auto& [port, value] : map) keys.push_back(port);
  EXPECT_EQ(keys, (std::vector<std::uint16_t>{22, 443, 8080}));
}

TEST(FlatMapTest, OperatorBracketDefaultConstructsNewValues) {
  FlatMap<std::uint16_t, std::uint64_t> map;
  EXPECT_EQ(map[80], 0u);  // inserted default
  EXPECT_EQ(map.size(), 1u);
  map[80] += 5;
  EXPECT_EQ(map[80], 5u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, EraseIfPrunesAndPreservesOrder) {
  FlatMap<std::uint16_t, int> map;
  for (std::uint16_t port : {9, 1, 5, 3, 7}) map[port] = port * 10;
  EXPECT_EQ(map.erase_if([](const auto& kv) { return kv.first % 2 == 0; }),
            0u);  // nothing even: no-op
  EXPECT_EQ(map.erase_if([](const auto& kv) { return kv.second >= 50; }),
            3u);
  std::vector<std::uint16_t> keys;
  for (const auto& [port, value] : map) keys.push_back(port);
  EXPECT_EQ(keys, (std::vector<std::uint16_t>{1, 3}));
}

TEST(FlatMapTest, EraseAndClear) {
  FlatMap<std::uint16_t, int> map;
  map[1] = 1;
  map[2] = 2;
  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.erase(1));
  EXPECT_EQ(map.size(), 1u);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(2), nullptr);
}

TEST(FlatMapTest, SlidingWindowIdiom) {
  // The exact engine usage: stamp ports with a timestamp, prune stale
  // entries, count the survivors.
  FlatMap<std::uint16_t, std::int64_t> window;
  for (std::int64_t t = 0; t < 100; ++t) {
    window[static_cast<std::uint16_t>(t % 13)] = t;
    window.erase_if([&](const auto& kv) { return t - kv.second > 10; });
    EXPECT_LE(window.size(), 13u);
  }
  EXPECT_EQ(window.size(), 11u);  // stamps 89..99 survive at t=99
}

}  // namespace
}  // namespace idseval::util
