#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace idseval::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  for (const double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  Rng rng(5);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(EwmaTest, SeedsWithFirstValue) {
  Ewma e(0.1);
  EXPECT_FALSE(e.seeded());
  e.add(10.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(EwmaTest, MovesTowardNewValues) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(EwmaTest, ConvergesToConstant) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.add(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(EwmaBaselineTest, ZeroScoreBeforeSeeding) {
  EwmaBaseline b(0.1);
  EXPECT_EQ(b.zscore(100.0), 0.0);
}

TEST(EwmaBaselineTest, ConstantBaselineFlagsDeviation) {
  EwmaBaseline b(0.1);
  for (int i = 0; i < 100; ++i) b.add(50.0);
  EXPECT_NEAR(b.mean(), 50.0, 1e-6);
  // 100 is far from a constant 50 baseline.
  EXPECT_GT(b.zscore(100.0), 10.0);
  EXPECT_LT(b.zscore(0.0), -10.0);
  // A value on the baseline scores ~0.
  EXPECT_NEAR(b.zscore(50.0), 0.0, 1e-6);
}

TEST(EwmaBaselineTest, MinStddevFloorsScore) {
  EwmaBaseline b(0.1);
  for (int i = 0; i < 100; ++i) b.add(3.0);
  // Without a floor one extra unit is a huge z; with floor 1.0 it is ~1.
  EXPECT_NEAR(b.zscore(4.0, 1.0), 1.0, 0.05);
}

TEST(EwmaBaselineTest, NoisyBaselineGivesSaneZ) {
  Rng rng(9);
  EwmaBaseline b(0.05);
  for (int i = 0; i < 5000; ++i) b.add(rng.normal(100.0, 10.0));
  EXPECT_NEAR(b.mean(), 100.0, 3.0);
  const double z = b.zscore(150.0);
  EXPECT_GT(z, 3.0);
  EXPECT_LT(z, 8.0);
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(percentile(std::vector<double>{}, 50.0), 0.0);
}

TEST(PercentileTest, MedianAndExtremes) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(PercentileTest, Interpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(PercentileTest, ClampsOutOfRangeP) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 200.0), 2.0);
}

TEST(ReservoirTest, RetainsAllWhenUnderCapacity) {
  Reservoir r(100);
  for (int i = 0; i < 50; ++i) r.add(static_cast<double>(i));
  EXPECT_EQ(r.samples().size(), 50u);
  EXPECT_EQ(r.seen(), 50u);
}

TEST(ReservoirTest, CapsAtCapacity) {
  Reservoir r(64);
  for (int i = 0; i < 10000; ++i) r.add(static_cast<double>(i));
  EXPECT_EQ(r.samples().size(), 64u);
  EXPECT_EQ(r.seen(), 10000u);
}

TEST(ReservoirTest, SampleIsRepresentative) {
  Reservoir r(2000, 3);
  for (int i = 0; i < 100000; ++i) r.add(static_cast<double>(i % 1000));
  // Median of the uniform 0..999 stream should be near 500.
  EXPECT_NEAR(r.percentile(50.0), 500.0, 60.0);
}

TEST(ReservoirTest, ReplacementSlotIsUnbiased) {
  // A capacity-1 reservoir over a 3-element stream must keep each
  // element with probability 1/3. A modulo-based slot draw (the old
  // implementation) is biased toward low slots; Lemire's rejection draw
  // is exactly uniform. 30k independent reservoirs put each count at
  // 10000 +- ~450 (5 sigma of a Binomial(30000, 1/3)).
  constexpr int kTrials = 30000;
  int kept[3] = {0, 0, 0};
  for (int t = 0; t < kTrials; ++t) {
    Reservoir r(1, static_cast<std::uint64_t>(t) + 1);
    r.add(0.0);
    r.add(1.0);
    r.add(2.0);
    ASSERT_EQ(r.samples().size(), 1u);
    ++kept[static_cast<int>(r.samples()[0])];
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(kept[i], kTrials / 3, 450) << "element " << i;
  }
}

}  // namespace
}  // namespace idseval::util
