#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/strfmt.hpp"

namespace idseval::util {
namespace {

TEST(TextTableTest, RejectsEmptyHeaders) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, RejectsMismatchedAligns) {
  EXPECT_THROW(TextTable({"a", "b"}, {Align::kLeft}),
               std::invalid_argument);
}

TEST(TextTableTest, RejectsWrongRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTableTest, RendersHeadersAndRows) {
  TextTable t({"Name", "Score"});
  t.add_row({"alpha", "3"});
  t.add_row({"beta", "14"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("14"), std::string::npos);
}

TEST(TextTableTest, ColumnWidthsAccommodateLongestCell) {
  TextTable t({"H"});
  t.add_row({"a very long cell value"});
  const std::string out = t.render();
  // Every line between rules should have the same length.
  std::size_t expected = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    const std::string line = out.substr(pos, eol - pos);
    if (!line.empty()) {
      if (expected == 0) expected = line.size();
      EXPECT_EQ(line.size(), expected) << line;
    }
    pos = eol + 1;
  }
}

TEST(TextTableTest, TitleAppearsFirst) {
  TextTable t({"a"});
  t.set_title("My Table");
  t.add_row({"x"});
  EXPECT_EQ(t.render().rfind("My Table", 0), 0u);
}

TEST(TextTableTest, RightAlignment) {
  TextTable t({"num"}, {Align::kRight});
  t.add_row({"7"});
  const std::string out = t.render();
  // Right-aligned single char in a 3-wide column: "|   7 |"
  EXPECT_NE(out.find("|   7 |"), std::string::npos);
}

TEST(TextTableTest, RuleInsertsSeparator) {
  TextTable t({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.render();
  // 4 rules total: top, under header, mid, bottom.
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(FmtTest, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-1.0, 0), "-1");
}

TEST(FmtTest, FmtSi) {
  EXPECT_EQ(fmt_si(1234.0, 2), "1.23k");
  EXPECT_EQ(fmt_si(2500000.0, 1), "2.5M");
  EXPECT_EQ(fmt_si(3.5e9, 1), "3.5G");
  EXPECT_EQ(fmt_si(999.0, 0), "999");
}

TEST(FmtTest, Cat) {
  EXPECT_EQ(cat("x=", 3, " y=", 4.5), "x=3 y=4.5");
  EXPECT_EQ(cat(), "");
}

TEST(FmtTest, FmtFixed) {
  EXPECT_EQ(fmt_fixed(0.125, 3), "0.125");
  EXPECT_EQ(fmt_fixed(100.0, 0), "100");
}

}  // namespace
}  // namespace idseval::util
