#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace idseval::util {
namespace {

TEST(SpscRingTest, CapacityRoundsToPowerOfTwo) {
  SpscRing<int> ring(100);
  EXPECT_EQ(ring.capacity(), 128u);
  SpscRing<int> exact(64);
  EXPECT_EQ(exact.capacity(), 64u);
}

TEST(SpscRingTest, PushPopSingle) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.try_push(42));
  EXPECT_EQ(ring.size(), 1u);
  const auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, PopEmptyFails) {
  SpscRing<int> ring(4);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRingTest, PushFullFails) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // tail drop — back-pressure signal
  EXPECT_EQ(ring.size(), 4u);
}

TEST(SpscRingTest, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) ring.try_push(i);
  for (int i = 0; i < 8; ++i) {
    const auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(SpscRingTest, WrapsAround) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.try_push(round));
    const auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
}

TEST(SpscRingTest, MovesNonCopyableTypes) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

// Concurrency invariant: every pushed item is popped exactly once, in
// order, with no losses and no duplications — under real threads.
TEST(SpscRingTest, ConcurrentProducerConsumer) {
  constexpr std::uint64_t kItems = 500000;
  SpscRing<std::uint64_t> ring(1024);
  std::uint64_t sum = 0;
  std::uint64_t expected_next = 0;
  bool ordered = true;

  std::thread consumer([&] {
    std::uint64_t received = 0;
    while (received < kItems) {
      if (auto v = ring.try_pop()) {
        if (*v != expected_next) ordered = false;
        ++expected_next;
        sum += *v;
        ++received;
      }
    }
  });

  for (std::uint64_t i = 0; i < kItems; ++i) {
    while (!ring.try_push(i)) {
      // spin: consumer will drain
    }
  }
  consumer.join();

  EXPECT_TRUE(ordered);
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace idseval::util
