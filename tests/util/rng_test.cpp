#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace idseval::util {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, Reproducible) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformU64Inclusive) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_u64(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values occur
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);  // mean = 1/rate
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(5.0), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalShifted) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ParetoMinimum) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
  }
}

TEST(RngTest, ParetoMeanMatchesFormula) {
  Rng rng(12);
  const double xm = 2.0;
  const double alpha = 3.0;  // finite variance
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.pareto(xm, alpha);
  EXPECT_NEAR(sum / n, xm * alpha / (alpha - 1.0), 0.05);
}

TEST(RngTest, ZipfInRange) {
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(rng.zipf(10, 1.2), 10u);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(14);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.zipf(8, 1.2)];
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[0], counts[7]);
  // Rank 0 should hold a plurality well above uniform (12.5%).
  EXPECT_GT(counts[0], 50000 / 4);
}

TEST(RngTest, ZipfZeroExponentIsUniformish) {
  Rng rng(15);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.zipf(4, 0.0)];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, PoissonMean) {
  Rng rng(16);
  for (const double mean : {0.5, 4.0, 60.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.02);
  }
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(18);
  Rng child = parent.fork(1);
  // The child and a fresh parent continuation should not be identical.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next() == parent.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(DeriveSeedTest, PinnedKnownOutputs) {
  // Campaign stores persist per-cell seeds; changing the derivation
  // silently invalidates every stored result. Pin the function.
  EXPECT_EQ(derive_seed(0, 0), 7960286522194355700ULL);
  EXPECT_EQ(derive_seed(42, 0), 2949826092126892291ULL);
  EXPECT_EQ(derive_seed(42, 1), 6904877152625194467ULL);
  EXPECT_EQ(derive_seed(42, 2), 7297471543603743092ULL);
  EXPECT_EQ(derive_seed(42, 63), 5994384473773330622ULL);
}

TEST(DeriveSeedTest, PureFunctionOfBaseAndIndex) {
  EXPECT_EQ(derive_seed(42, 17), derive_seed(42, 17));
  EXPECT_NE(derive_seed(42, 17), derive_seed(42, 18));
  EXPECT_NE(derive_seed(42, 17), derive_seed(43, 17));
}

TEST(DeriveSeedTest, NoCollisionsOverLargeGrid) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0ULL, 42ULL, 0xffffffffffffffffULL}) {
    for (std::uint64_t i = 0; i < 10000; ++i) {
      seeds.insert(derive_seed(base, i));
    }
  }
  EXPECT_EQ(seeds.size(), 30000u);
}

TEST(Hash64Test, StableAndDistinct) {
  EXPECT_EQ(hash64("sensor"), hash64("sensor"));
  EXPECT_NE(hash64("sensor"), hash64("Sensor"));
  EXPECT_NE(hash64(""), hash64("a"));
}

}  // namespace
}  // namespace idseval::util
