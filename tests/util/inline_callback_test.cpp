#include "util/inline_callback.hpp"

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

namespace idseval::util {
namespace {

TEST(InlineCallbackTest, DefaultConstructedIsEmpty) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.on_heap());
}

TEST(InlineCallbackTest, InvokesSmallLambdaInline) {
  int hits = 0;
  InlineCallback cb([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.on_heap());
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, TypicalEventCapturesStayInline) {
  // The hot captures in the simulator: {this, 8-byte handle} and
  // {this, ~72-byte packet}. Both must fit the inline buffer — the
  // benchmark's zero-fallback acceptance criterion depends on it.
  struct FakePacket {
    std::uint64_t id, flow;
    std::array<std::byte, 56> rest;
  };
  static_assert(InlineCallback::fits_inline<void (*)()>());
  int* self = nullptr;
  std::uint32_t handle = 7;
  auto continuation = [self, handle] { (void)self; (void)handle; };
  static_assert(InlineCallback::fits_inline<decltype(continuation)>());
  FakePacket p{};
  auto delivery = [self, p] { (void)self; (void)p; };
  static_assert(InlineCallback::fits_inline<decltype(delivery)>());

  InlineCallback cb(std::move(delivery));
  EXPECT_FALSE(cb.on_heap());
}

TEST(InlineCallbackTest, OversizedCaptureFallsBackToHeap) {
  std::array<std::byte, InlineCallback::kInlineBytes + 64> big{};
  auto fat = [big] { (void)big; };
  static_assert(!InlineCallback::fits_inline<decltype(fat)>());

  int hits = 0;
  std::array<std::byte, InlineCallback::kInlineBytes + 64> payload{};
  InlineCallback cb([payload, &hits] {
    (void)payload;
    ++hits;
  });
  EXPECT_TRUE(cb.on_heap());
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallbackTest, MoveTransfersInlineTarget) {
  int hits = 0;
  InlineCallback a([&hits] { ++hits; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  InlineCallback c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, MoveTransfersHeapTarget) {
  int hits = 0;
  std::array<std::byte, InlineCallback::kInlineBytes + 8> payload{};
  InlineCallback a([payload, &hits] {
    (void)payload;
    ++hits;
  });
  ASSERT_TRUE(a.on_heap());
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.on_heap());
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallbackTest, DestroysCapturedStateExactlyOnce) {
  // shared_ptr use_count tracks live copies of the capture across
  // construction, two moves, and destruction.
  auto token = std::make_shared<int>(42);
  ASSERT_EQ(token.use_count(), 1);
  {
    InlineCallback a([token] { (void)token; });
    EXPECT_EQ(token.use_count(), 2);
    InlineCallback b(std::move(a));
    EXPECT_EQ(token.use_count(), 2);  // moved, not copied
    InlineCallback c;
    c = std::move(b);
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineCallbackTest, DestroysHeapCapturedStateExactlyOnce) {
  auto token = std::make_shared<int>(7);
  std::array<std::byte, InlineCallback::kInlineBytes + 8> pad{};
  {
    InlineCallback a([token, pad] {
      (void)token;
      (void)pad;
    });
    ASSERT_TRUE(a.on_heap());
    EXPECT_EQ(token.use_count(), 2);
    InlineCallback b(std::move(a));
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineCallbackTest, ResetReleasesTarget) {
  auto token = std::make_shared<int>(1);
  InlineCallback cb([token] { (void)token; });
  EXPECT_EQ(token.use_count(), 2);
  cb.reset();
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineCallbackTest, ReassignmentReplacesTarget) {
  auto first = std::make_shared<int>(1);
  int hits = 0;
  InlineCallback cb([first] { (void)first; });
  EXPECT_EQ(first.use_count(), 2);
  cb = InlineCallback([&hits] { ++hits; });
  EXPECT_EQ(first.use_count(), 1);  // old capture destroyed
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallbackTest, MutableLambdaStatePersistsAcrossCalls) {
  int observed = 0;
  InlineCallback cb([n = 0, &observed]() mutable { observed = ++n; });
  cb();
  cb();
  cb();
  EXPECT_EQ(observed, 3);
}

}  // namespace
}  // namespace idseval::util
