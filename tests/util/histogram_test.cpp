#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace idseval::util {
namespace {

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, BinsValues) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(0.9);
  h.add(5.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(HistogramTest, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i % 100));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(HistogramTest, RenderShowsNonEmptyBins) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(2.5);
  const std::string out = h.render();
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("[0, 1)"), std::string::npos);
}

TEST(LogHistogramTest, CountsAndZeros) {
  LogHistogram h;
  h.add(0.0);
  h.add(-5.0);
  h.add(1e-6);
  h.add(1e3);
  EXPECT_EQ(h.count(), 4u);
  const std::string out = h.render();
  EXPECT_NE(out.find("zeros: 2"), std::string::npos);
}

TEST(LogHistogramTest, MergeCombinesBucketsZerosAndTotals) {
  LogHistogram a;
  LogHistogram b;
  a.add(1e-3);
  a.add(0.0);
  b.add(1e-3);
  b.add(1e3);
  b.add(-1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.zeros(), 2u);
  // 1e-3 -> exponent -10 bucket; both samples land there after merge.
  EXPECT_EQ(a.bucket_count(
                static_cast<std::size_t>(-10 - LogHistogram::min_exp())),
            2u);
  // The merged distribution spans both modes.
  EXPECT_LT(a.quantile(0.3), 1.0);
  EXPECT_GT(a.quantile(0.95), 1.0);
  // b is untouched.
  EXPECT_EQ(b.count(), 3u);
}

TEST(LogHistogramTest, QuantileOrdersOfMagnitude) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(1e-3);
  for (int i = 0; i < 100; ++i) h.add(1e3);
  const double median_low = h.quantile(0.25);
  const double median_high = h.quantile(0.75);
  EXPECT_LT(median_low, 1.0);
  EXPECT_GT(median_high, 1.0);
}

}  // namespace
}  // namespace idseval::util
