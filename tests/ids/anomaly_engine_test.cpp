#include "ids/anomaly_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "traffic/payload.hpp"
#include "util/rng.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::Protocol;
using netsim::SimTime;
using netsim::TcpFlags;

Packet make(std::uint64_t flow, Ipv4 src, Ipv4 dst, std::uint16_t dst_port,
            std::string payload, TcpFlags flags = {},
            Protocol proto = Protocol::kTcp) {
  FiveTuple t;
  t.src_ip = src;
  t.dst_ip = dst;
  t.src_port = 4000;
  t.dst_port = dst_port;
  t.proto = proto;
  return netsim::make_packet(flow, flow, SimTime::zero(), t,
                             std::move(payload), flags);
}

TEST(PayloadEntropyTest, KnownValues) {
  EXPECT_DOUBLE_EQ(payload_entropy(""), 0.0);
  EXPECT_DOUBLE_EQ(payload_entropy("aaaa"), 0.0);
  EXPECT_DOUBLE_EQ(payload_entropy("ab"), 1.0);
  EXPECT_DOUBLE_EQ(payload_entropy("abcd"), 2.0);
}

TEST(PayloadEntropyTest, RandomHigherThanStructured) {
  util::Rng rng(4);
  const double random_h =
      payload_entropy(traffic::random_printable(1000, rng));
  const double text_h = payload_entropy(
      traffic::synthesize(traffic::PayloadKind::kClusterRpc, 1000, rng));
  EXPECT_GT(random_h, text_h);
  EXPECT_LE(random_h, 8.0);
}

TEST(SensitivityToZscoreTest, BoundsAndMonotone) {
  EXPECT_NEAR(sensitivity_to_zscore(0.0), 8.0, 1e-9);
  EXPECT_NEAR(sensitivity_to_zscore(1.0), 1.5, 1e-9);
  EXPECT_GT(sensitivity_to_zscore(0.2), sensitivity_to_zscore(0.8));
}

class AnomalyEngineTest : public ::testing::Test {
 protected:
  AnomalyEngine make_engine(double sensitivity = 0.5) {
    AnomalyEngineOptions opt;
    opt.sensitivity = sensitivity;
    return AnomalyEngine(opt);
  }

  /// Trains the engine on regular cluster traffic among internal hosts.
  void train(AnomalyEngine& engine, int packets = 3000) {
    util::Rng rng(11);
    for (int i = 0; i < packets; ++i) {
      const Ipv4 src(10, 0, 0, static_cast<std::uint8_t>(1 + rng.index(6)));
      const Ipv4 dst(10, 0, 0, static_cast<std::uint8_t>(1 + rng.index(6)));
      const std::uint16_t port =
          i % 10 == 0 ? netsim::ports::kDns : netsim::ports::kClusterRpc;
      Packet p = make(static_cast<std::uint64_t>(100 + i / 6), src, dst,
                      port,
                      traffic::synthesize(traffic::PayloadKind::kClusterRpc,
                                          160, rng));
      std::vector<Detection> sink;
      engine.process(p, SimTime::from_ms(i), sink);
      EXPECT_TRUE(sink.empty());  // learning mode never detects
    }
    engine.set_mode(AnomalyEngine::Mode::kDetecting);
  }

  util::Rng rng_{22};
};

TEST_F(AnomalyEngineTest, StartsInLearningMode) {
  auto engine = make_engine();
  EXPECT_EQ(engine.mode(), AnomalyEngine::Mode::kLearning);
}

TEST_F(AnomalyEngineTest, NormalTrafficStaysQuietAtModerateSensitivity) {
  auto engine = make_engine(0.5);
  train(engine);
  std::vector<Detection> out;
  for (int i = 0; i < 500; ++i) {
    Packet p = make(static_cast<std::uint64_t>(5000 + i), Ipv4(10, 0, 0, 2),
                    Ipv4(10, 0, 0, 3), netsim::ports::kClusterRpc,
                    traffic::synthesize(traffic::PayloadKind::kClusterRpc,
                                        160, rng_));
    engine.process(p, SimTime::from_sec(10) + SimTime::from_ms(i), out);
  }
  // A couple of tail events are acceptable; a flood is not.
  EXPECT_LE(out.size(), 5u);
}

TEST_F(AnomalyEngineTest, NovelPayloadEntropyDetected) {
  auto engine = make_engine(0.5);
  train(engine);
  std::vector<Detection> out;
  Packet p = make(9000, Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 2),
                  netsim::ports::kClusterRpc,
                  traffic::random_printable(1100, rng_));
  engine.process(p, SimTime::from_sec(10), out);
  ASSERT_FALSE(out.empty());
  bool entropy_or_length = false;
  for (const auto& d : out) {
    EXPECT_EQ(d.method, DetectionMethod::kAnomaly);
    if (d.rule.find("payload") != std::string::npos) {
      entropy_or_length = true;
    }
  }
  EXPECT_TRUE(entropy_or_length);
}

TEST_F(AnomalyEngineTest, GradualFanoutScanDetectedDespitePoisoning) {
  // The self-poisoning regression: a scan's fanout climbs gradually; the
  // winsorized baseline must not absorb it.
  auto engine = make_engine(0.5);
  train(engine);
  std::vector<Detection> out;
  for (int i = 0; i < 100; ++i) {
    Packet p = make(9100, Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 2),
                    static_cast<std::uint16_t>(100 + i), "");
    engine.process(p, SimTime::from_sec(10) + SimTime::from_ms(i), out);
  }
  bool fanout = false;
  for (const auto& d : out) {
    if (d.rule == "source fanout anomaly") fanout = true;
  }
  EXPECT_TRUE(fanout);
}

TEST_F(AnomalyEngineTest, SynFloodRateDetected) {
  auto engine = make_engine(0.5);
  train(engine);
  std::vector<Detection> out;
  TcpFlags syn;
  syn.syn = true;
  for (int i = 0; i < 600; ++i) {
    Packet p = make(9200, Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 2),
                    netsim::ports::kHttp, "", syn);
    engine.process(p, SimTime::from_sec(10) + SimTime::from_us(i * 300),
                   out);
  }
  bool rate = false;
  for (const auto& d : out) {
    if (d.rule == "SYN rate anomaly") rate = true;
  }
  EXPECT_TRUE(rate);
}

TEST_F(AnomalyEngineTest, NovelInternalPeerDetected) {
  auto engine = make_engine(0.6);
  train(engine);
  std::vector<Detection> out;
  // Host 10.0.0.7 never appeared as a source during training.
  Packet p = make(9300, Ipv4(10, 0, 0, 7), Ipv4(10, 0, 0, 2),
                  netsim::ports::kTelnet, "");
  engine.process(p, SimTime::from_sec(10), out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].rule, "novel internal peer");
  EXPECT_EQ(out[0].severity, 5);
}

TEST_F(AnomalyEngineTest, ExternalSourcesNeverTriggerPeerNovelty) {
  auto engine = make_engine(1.0);
  train(engine);
  std::vector<Detection> out;
  Packet p = make(9400, Ipv4(198, 51, 100, 9), Ipv4(10, 0, 0, 2),
                  netsim::ports::kClusterRpc,
                  traffic::synthesize(traffic::PayloadKind::kClusterRpc,
                                      160, rng_));
  engine.process(p, SimTime::from_sec(10), out);
  for (const auto& d : out) {
    EXPECT_EQ(d.rule.find("novel internal"), std::string::npos);
  }
}

TEST_F(AnomalyEngineTest, LowSensitivityIgnoresPeerNovelty) {
  auto engine = make_engine(0.0);  // trigger z = 8 > pseudo-z 5
  train(engine);
  std::vector<Detection> out;
  Packet p = make(9500, Ipv4(10, 0, 0, 7), Ipv4(10, 0, 0, 2),
                  netsim::ports::kTelnet, "");
  engine.process(p, SimTime::from_sec(10), out);
  EXPECT_TRUE(out.empty());
}

TEST_F(AnomalyEngineTest, DetectionFiresOncePerFlow) {
  auto engine = make_engine(0.5);
  train(engine);
  std::vector<Detection> out;
  for (int i = 0; i < 5; ++i) {
    Packet p = make(9600, Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 2),
                    netsim::ports::kClusterRpc,
                    traffic::random_printable(1100, rng_));
    engine.process(p, SimTime::from_sec(10) + SimTime::from_ms(i), out);
  }
  std::size_t entropy_hits = 0;
  for (const auto& d : out) {
    if (d.rule == "anomalous payload entropy") ++entropy_hits;
  }
  EXPECT_EQ(entropy_hits, 1u);
}

TEST_F(AnomalyEngineTest, ConfidenceGrowsWithDeviation) {
  auto engine = make_engine(0.5);
  train(engine);
  std::vector<Detection> mild;
  std::vector<Detection> extreme;
  // Mildly long payload vs extremely long payload on the learned port.
  Packet mild_p = make(9700, Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 2),
                       netsim::ports::kClusterRpc,
                       traffic::synthesize(
                           traffic::PayloadKind::kClusterRpc, 320, rng_));
  Packet extreme_p = make(9701, Ipv4(198, 51, 100, 2), Ipv4(10, 0, 0, 2),
                          netsim::ports::kClusterRpc,
                          traffic::synthesize(
                              traffic::PayloadKind::kClusterRpc, 1400,
                              rng_));
  engine.process(mild_p, SimTime::from_sec(10), mild);
  engine.process(extreme_p, SimTime::from_sec(10), extreme);
  if (!mild.empty() && !extreme.empty()) {
    EXPECT_GE(extreme[0].confidence, mild[0].confidence);
  }
  ASSERT_FALSE(extreme.empty());
}

TEST_F(AnomalyEngineTest, ModelBytesGrowWithLearning) {
  auto engine = make_engine();
  const std::size_t before = engine.model_bytes();
  train(engine);
  EXPECT_GT(engine.model_bytes(), before);
  EXPECT_GT(engine.learned_ports(), 0u);
  EXPECT_GT(engine.learned_peers(), 0u);
}

TEST_F(AnomalyEngineTest, CostGrowsWithPayload) {
  auto engine = make_engine();
  Packet small = make(1, Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 80, "x");
  Packet large = make(2, Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 80,
                      std::string(1000, 'x'));
  EXPECT_GT(engine.scan_cost_ops(large), engine.scan_cost_ops(small));
}

}  // namespace
}  // namespace idseval::ids
