// Per-flow state eviction on flow end (FIN/RST): the load balancer's
// kLeastLoaded session pins and the monitor's duplicate-suppression
// records are released when a flow closes, so long runs track *live*
// flows instead of every flow ever seen. Covers the direct component
// APIs and the pipeline wiring (including the batched same-tick path).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ids/load_balancer.hpp"
#include "ids/monitor.hpp"
#include "ids/pipeline.hpp"
#include "ids/sensor.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::SimTime;
using netsim::TcpFlags;

Packet flow_packet(netsim::Simulator& sim, std::uint64_t flow,
                   TcpFlags flags = {}) {
  FiveTuple t;
  t.src_ip = Ipv4(198, 51, 100, 1);
  t.dst_ip = Ipv4(10, 0, 0, 2);
  t.src_port = static_cast<std::uint16_t>(4000 + flow % 60000);
  t.dst_port = 80;
  return netsim::make_packet(sim.next_packet_id(), flow, sim.now(), t,
                             "payload", flags);
}

SensorConfig fast_sensor() {
  SensorConfig c;
  c.base_ops_per_packet = 1000.0;
  c.ops_per_sec = 1e9;
  return c;
}

struct LeastLoadedRig {
  netsim::Simulator sim;
  Sensor s0;
  Sensor s1;
  LoadBalancer lb;

  LeastLoadedRig()
      : s0(sim, fast_sensor()),
        s1(sim, fast_sensor()),
        lb(sim,
           [] {
             LoadBalancerConfig c;
             c.strategy = LbStrategy::kLeastLoaded;
             c.ops_per_packet = 1000.0;
             c.ops_per_sec = 1e9;
             return c;
           }(),
           2) {
    lb.set_sensors({&s0, &s1});
    lb.set_forward([](std::size_t, const Packet&) {});
  }
};

TEST(FlowStateEvictionTest, LeastLoadedPinsReleasedOnFin) {
  LeastLoadedRig rig;
  constexpr std::uint64_t kFlows = 10;
  for (std::uint64_t flow = 1; flow <= kFlows; ++flow) {
    rig.lb.ingest(flow_packet(rig.sim, flow));
    rig.lb.ingest(flow_packet(rig.sim, flow));
  }
  rig.sim.run_until();
  EXPECT_EQ(rig.lb.pins_live(), kFlows);
  EXPECT_EQ(rig.lb.stats().pin_evictions, 0u);

  TcpFlags fin;
  fin.fin = true;
  for (std::uint64_t flow = 1; flow <= kFlows; ++flow) {
    rig.lb.ingest(flow_packet(rig.sim, flow, fin));
  }
  rig.sim.run_until();
  EXPECT_EQ(rig.lb.pins_live(), 0u);
  EXPECT_EQ(rig.lb.stats().pin_evictions, kFlows);
}

TEST(FlowStateEvictionTest, SinglePacketRstFlowIsNeverPinned) {
  LeastLoadedRig rig;
  TcpFlags rst;
  rst.rst = true;
  rig.lb.ingest(flow_packet(rig.sim, 1, rst));
  rig.sim.run_until();
  EXPECT_EQ(rig.lb.pins_live(), 0u);
  // Nothing was pinned, so nothing was evicted either.
  EXPECT_EQ(rig.lb.stats().pin_evictions, 0u);
  EXPECT_EQ(rig.lb.stats().forwarded, 1u);
}

TEST(FlowStateEvictionTest, PinTableStaysFlatUnderFlowChurn) {
  LeastLoadedRig rig;
  TcpFlags fin;
  fin.fin = true;
  constexpr std::uint64_t kFlows = 2000;
  std::size_t peak_pins = 0;
  for (std::uint64_t flow = 1; flow <= kFlows; ++flow) {
    rig.lb.ingest(flow_packet(rig.sim, flow));
    rig.lb.ingest(flow_packet(rig.sim, flow, fin));
    peak_pins = std::max(peak_pins, rig.lb.pins_live());
  }
  rig.sim.run_until();
  // Bounded by concurrently-open flows (here: one), not total flows.
  EXPECT_LE(peak_pins, 2u);
  EXPECT_EQ(rig.lb.pins_live(), 0u);
  EXPECT_EQ(rig.lb.stats().pin_evictions, kFlows);
}

ThreatReport report_for(std::uint64_t flow, int severity,
                        netsim::Simulator& sim) {
  ThreatReport r;
  r.primary.flow_id = flow;
  r.primary.rule = "test-rule";
  r.primary.when = sim.now();
  r.primary.severity = severity;
  r.severity = severity;
  r.when = sim.now();
  return r;
}

TEST(FlowStateEvictionTest, MonitorEvictsDedupRecordButKeepsScoringSet) {
  netsim::Simulator sim;
  MonitorConfig cfg;
  cfg.notification_delay = SimTime::from_ms(1);
  cfg.evict_on_flow_end = true;
  Monitor monitor(sim, cfg);

  monitor.submit(report_for(7, 3, sim));
  monitor.submit(report_for(7, 3, sim));  // duplicate while flow lives
  sim.run_until();
  EXPECT_EQ(monitor.stats().alerts_raised, 1u);
  EXPECT_EQ(monitor.stats().suppressed_duplicate, 1u);
  EXPECT_EQ(monitor.tracked_flows(), 1u);

  monitor.flow_ended(7);
  EXPECT_EQ(monitor.tracked_flows(), 0u);
  EXPECT_EQ(monitor.stats().evicted_flows, 1u);
  // The scoring set D survives eviction — the flow stays detected.
  EXPECT_EQ(monitor.alerted_flows().count(7), 1u);

  // Ending an untracked flow is a no-op, not an eviction.
  monitor.flow_ended(999);
  EXPECT_EQ(monitor.stats().evicted_flows, 1u);

  // A straggler report after eviction re-alerts (the documented cost of
  // the bounded-memory mode).
  monitor.submit(report_for(7, 3, sim));
  sim.run_until();
  EXPECT_EQ(monitor.stats().alerts_raised, 2u);
}

TEST(FlowStateEvictionTest, MonitorEvictionIsGatedOffByDefault) {
  netsim::Simulator sim;
  MonitorConfig cfg;
  cfg.notification_delay = SimTime::from_ms(1);
  Monitor monitor(sim, cfg);
  ASSERT_FALSE(cfg.evict_on_flow_end);

  monitor.submit(report_for(7, 3, sim));
  sim.run_until();
  monitor.flow_ended(7);
  EXPECT_EQ(monitor.tracked_flows(), 1u);
  EXPECT_EQ(monitor.stats().evicted_flows, 0u);

  // Straggler stays suppressed in the default mode.
  monitor.submit(report_for(7, 3, sim));
  sim.run_until();
  EXPECT_EQ(monitor.stats().alerts_raised, 1u);
  EXPECT_EQ(monitor.stats().suppressed_duplicate, 1u);
}

TEST(FlowStateEvictionTest, PipelineForwardsFlowEndToMonitor) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  net.add_host("h1", Ipv4(10, 0, 0, 1));
  net.add_external_host("ext", Ipv4(198, 51, 100, 1));

  PipelineConfig cfg;
  cfg.product = "evict-test";
  cfg.sensor_count = 1;
  cfg.sensor.base_ops_per_packet = 1000.0;
  cfg.sensor.ops_per_sec = 1e9;
  cfg.rules = standard_rule_set();
  cfg.monitor.notification_delay = SimTime::from_ms(1);
  cfg.monitor.evict_on_flow_end = true;
  cfg.use_console = false;
  Pipeline pipeline(sim, net, cfg);
  pipeline.attach();

  // Seed dedup records directly; the pipeline's tap only needs to relay
  // the flow-end signal.
  pipeline.monitor().submit(report_for(1, 3, sim));
  pipeline.monitor().submit(report_for(2, 3, sim));
  sim.run_until();
  ASSERT_EQ(pipeline.monitor().tracked_flows(), 2u);

  // Two FIN packets injected at the same tick exercise the coalesced
  // feed_batch path.
  TcpFlags fin;
  fin.fin = true;
  auto fin_packet = [&](std::uint64_t flow) {
    FiveTuple t;
    t.src_ip = Ipv4(198, 51, 100, 1);
    t.dst_ip = Ipv4(10, 0, 0, 1);
    t.src_port = static_cast<std::uint16_t>(4000 + flow);
    t.dst_port = 80;
    return netsim::make_packet(sim.next_packet_id(), flow, sim.now(), t,
                               "bye", fin);
  };
  net.send(fin_packet(1));
  net.send(fin_packet(2));
  sim.run_until();

  EXPECT_EQ(pipeline.monitor().tracked_flows(), 0u);
  EXPECT_EQ(pipeline.monitor().stats().evicted_flows, 2u);
  // D is untouched.
  EXPECT_EQ(pipeline.monitor().alerted_flows().size(), 2u);
}

}  // namespace
}  // namespace idseval::ids
