// Pipeline assembly tests, including the Figure 2 cardinality validation
// (F2 in the experiment index): LB 1c:M, sensors M:M analyzers, analyzers
// M:1 monitor, monitor 1:1c console.
#include "ids/pipeline.hpp"

#include <gtest/gtest.h>

#include "attack/patterns.hpp"
#include "util/strfmt.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::SimTime;

PipelineConfig base_config() {
  PipelineConfig c;
  c.product = "test-ids";
  c.sensor_count = 2;
  c.sensor.base_ops_per_packet = 1000.0;
  c.sensor.ops_per_sec = 1e9;
  c.signature_engine = true;
  c.rules = standard_rule_set();
  c.analyzer_count = 1;
  c.monitor.notification_delay = SimTime::from_ms(10);
  c.use_console = true;
  c.console.policy = default_policy();
  c.console.reaction_delay = SimTime::from_ms(10);
  return c;
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : net_(sim_) {
    for (int i = 1; i <= 4; ++i) {
      const Ipv4 addr(10, 0, 0, static_cast<std::uint8_t>(i));
      net_.add_host(util::cat("h", i), addr);
      internal_.push_back(addr);
    }
    net_.add_external_host("ext", Ipv4(198, 51, 100, 1));
  }

  void send(std::string payload, std::uint16_t dst_port = 80,
            Ipv4 src = Ipv4(198, 51, 100, 1)) {
    FiveTuple t;
    t.src_ip = src;
    t.dst_ip = internal_[0];
    t.src_port = 4000;
    t.dst_port = dst_port;
    net_.send(netsim::make_packet(sim_.next_packet_id(),
                                  sim_.next_flow_id(), sim_.now(), t,
                                  std::move(payload)));
  }

  netsim::Simulator sim_;
  netsim::Network net_;
  std::vector<Ipv4> internal_;
};

// --- Figure 2 cardinality validation ---------------------------------------

TEST(PipelineValidateTest, SensingIsEssential) {
  PipelineConfig c = base_config();
  c.sensor_count = 0;
  c.use_host_agents = false;
  const auto violations = Pipeline::validate(c);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("sensing is essential"), std::string::npos);
}

TEST(PipelineValidateTest, AnalysisIsEssential) {
  PipelineConfig c = base_config();
  c.analyzer_count = 0;
  EXPECT_FALSE(Pipeline::validate(c).empty());
}

TEST(PipelineValidateTest, LbRequiresSensors) {
  PipelineConfig c = base_config();
  c.sensor_count = 0;
  c.use_host_agents = true;  // sensing exists, but not network sensors
  c.use_load_balancer = true;
  bool found = false;
  for (const auto& v : Pipeline::validate(c)) {
    if (v.find("1c:M") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PipelineValidateTest, AnalyzersCannotOutnumberSources) {
  PipelineConfig c = base_config();
  c.sensor_count = 1;
  c.analyzer_count = 3;
  EXPECT_FALSE(Pipeline::validate(c).empty());
}

TEST(PipelineValidateTest, SensitivityRange) {
  PipelineConfig c = base_config();
  c.sensitivity = 1.5;
  EXPECT_FALSE(Pipeline::validate(c).empty());
}

TEST(PipelineValidateTest, ValidConfigPasses) {
  EXPECT_TRUE(Pipeline::validate(base_config()).empty());
  // Optional subprocesses may both be absent (1c): console off, LB off.
  PipelineConfig minimal = base_config();
  minimal.use_console = false;
  minimal.use_load_balancer = false;
  minimal.sensor_count = 1;
  EXPECT_TRUE(Pipeline::validate(minimal).empty());
}

TEST(PipelineValidateTest, ConstructorThrowsOnViolations) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  PipelineConfig c = base_config();
  c.sensor_count = 0;
  c.use_host_agents = false;
  EXPECT_THROW(Pipeline(sim, net, c), std::invalid_argument);
}

// --- End-to-end behaviour ----------------------------------------------------

TEST_F(PipelineTest, MirrorAttachDetectsAttackPayload) {
  Pipeline pipeline(sim_, net_, base_config());
  pipeline.attach();
  pipeline.set_learning(false);
  send(util::cat("GET ", attack::patterns::kDirTraversal,
                 " HTTP/1.0\r\n"));
  sim_.run_until();
  EXPECT_EQ(pipeline.monitor().log().size(), 1u);
  const PipelineTotals totals = pipeline.totals();
  EXPECT_EQ(totals.packets_tapped, 1u);
  EXPECT_EQ(totals.detections, 1u);
  EXPECT_EQ(totals.alerts, 1u);
}

TEST_F(PipelineTest, CleanTrafficRaisesNothing) {
  Pipeline pipeline(sim_, net_, base_config());
  pipeline.attach();
  pipeline.set_learning(false);
  send("GET /index.html HTTP/1.0\r\nHost: shop.example\r\n\r\n");
  sim_.run_until();
  EXPECT_TRUE(pipeline.monitor().log().empty());
}

TEST_F(PipelineTest, ConsoleBlocksCriticalOffender) {
  PipelineConfig c = base_config();
  Pipeline pipeline(sim_, net_, c);
  pipeline.attach();
  pipeline.set_learning(false);
  // NOP sled rule is severity 5 / confidence 0.95: block policy fires.
  send(util::cat("data ", attack::patterns::kNopSled,
                 attack::patterns::kShellInvoke));
  sim_.run_until();
  EXPECT_TRUE(net_.lan_switch().is_blocked(Ipv4(198, 51, 100, 1)));
}

TEST_F(PipelineTest, MgmtPortTrafficNotTapped) {
  Pipeline pipeline(sim_, net_, base_config());
  pipeline.attach();
  send("internal report", kMgmtPort);
  sim_.run_until();
  EXPECT_EQ(pipeline.totals().packets_tapped, 0u);
}

TEST_F(PipelineTest, StaticPlacementWithoutLbSplitsByDestination) {
  PipelineConfig c = base_config();
  c.sensor_count = 2;
  c.use_load_balancer = false;
  Pipeline pipeline(sim_, net_, c);
  pipeline.attach();
  // Hosts .1 and .2 hash to different sensors (value % 2 differs).
  FiveTuple t;
  t.src_ip = Ipv4(198, 51, 100, 1);
  t.src_port = 4000;
  t.dst_port = 80;
  t.dst_ip = internal_[0];
  net_.send(netsim::make_packet(sim_.next_packet_id(), 1, sim_.now(), t,
                                "a"));
  t.dst_ip = internal_[1];
  net_.send(netsim::make_packet(sim_.next_packet_id(), 2, sim_.now(), t,
                                "b"));
  sim_.run_until();
  EXPECT_EQ(pipeline.sensors()[0]->stats().offered, 1u);
  EXPECT_EQ(pipeline.sensors()[1]->stats().offered, 1u);
}

TEST_F(PipelineTest, LoadBalancerPathDelivers) {
  PipelineConfig c = base_config();
  c.use_load_balancer = true;
  c.lb.strategy = LbStrategy::kFlowHash;
  c.lb.in_line = false;
  Pipeline pipeline(sim_, net_, c);
  pipeline.attach();
  send("hello world");
  sim_.run_until();
  EXPECT_EQ(pipeline.load_balancer()->stats().forwarded, 1u);
  EXPECT_EQ(pipeline.totals().sensor_offered, 1u);
}

TEST_F(PipelineTest, InlineLbDelaysProductionTraffic) {
  // Measure delivery latency with a passive pipeline, then in-line.
  SimTime passive_arrival;
  SimTime inline_arrival;
  {
    netsim::Simulator sim;
    netsim::Network net(sim);
    auto* dst = net.add_host("h1", Ipv4(10, 0, 0, 1));
    net.add_external_host("ext", Ipv4(198, 51, 100, 1));
    SimTime* slot = &passive_arrival;
    dst->add_receiver([&sim, slot](const Packet&) { *slot = sim.now(); });
    PipelineConfig c = base_config();
    c.use_load_balancer = true;
    c.lb.in_line = false;
    Pipeline pipeline(sim, net, c);
    pipeline.attach();
    FiveTuple t;
    t.src_ip = Ipv4(198, 51, 100, 1);
    t.dst_ip = Ipv4(10, 0, 0, 1);
    t.dst_port = 80;
    net.send(netsim::make_packet(1, 1, sim.now(), t, "x"));
    sim.run_until();
  }
  {
    netsim::Simulator sim;
    netsim::Network net(sim);
    auto* dst = net.add_host("h1", Ipv4(10, 0, 0, 1));
    net.add_external_host("ext", Ipv4(198, 51, 100, 1));
    SimTime* slot = &inline_arrival;
    dst->add_receiver([&sim, slot](const Packet&) { *slot = sim.now(); });
    PipelineConfig c = base_config();
    c.use_load_balancer = true;
    c.lb.in_line = true;
    c.lb.inline_latency = SimTime::from_us(80);
    Pipeline pipeline(sim, net, c);
    pipeline.attach();
    FiveTuple t;
    t.src_ip = Ipv4(198, 51, 100, 1);
    t.dst_ip = Ipv4(10, 0, 0, 1);
    t.dst_port = 80;
    net.send(netsim::make_packet(1, 1, sim.now(), t, "x"));
    sim.run_until();
  }
  EXPECT_GE(inline_arrival - passive_arrival, SimTime::from_us(80));
}

TEST_F(PipelineTest, HostAgentsAttachToGivenHosts) {
  PipelineConfig c = base_config();
  c.sensor_count = 0;
  c.use_host_agents = true;
  c.analyzer_count = 1;
  Pipeline pipeline(sim_, net_, c);
  pipeline.attach(internal_);
  EXPECT_EQ(pipeline.agents().size(), internal_.size());
  send(util::cat("GET ", attack::patterns::kDirTraversal,
                 " HTTP/1.0\r\n"));
  sim_.run_until();
  EXPECT_EQ(pipeline.monitor().log().size(), 1u);
}

TEST_F(PipelineTest, UnknownAgentHostThrows) {
  PipelineConfig c = base_config();
  c.use_host_agents = true;
  Pipeline pipeline(sim_, net_, c);
  EXPECT_THROW(pipeline.attach({Ipv4(10, 9, 9, 9)}), std::invalid_argument);
}

TEST_F(PipelineTest, DoubleAttachThrows) {
  Pipeline pipeline(sim_, net_, base_config());
  pipeline.attach();
  EXPECT_THROW(pipeline.attach(), std::logic_error);
}

TEST_F(PipelineTest, SensorFailureReportedAsCriticalAlert) {
  PipelineConfig c = base_config();
  c.sensor_count = 1;
  c.sensor.queue_capacity = 4;
  c.sensor.base_ops_per_packet = 1e8;  // hopelessly slow
  c.sensor.overload_tolerance = SimTime::from_ms(100);
  c.sensor.recovery = RecoveryPolicy::kAppRestart;
  Pipeline pipeline(sim_, net_, c);
  pipeline.attach();
  for (int i = 0; i < 100; ++i) send("x");
  sim_.run_until();
  bool failure_alert = false;
  for (const auto& alert : pipeline.monitor().log()) {
    if (alert.rule.find("sensor failure") != std::string::npos) {
      failure_alert = true;
      EXPECT_EQ(alert.severity, 5);
    }
  }
  EXPECT_TRUE(failure_alert);
  EXPECT_GT(pipeline.totals().sensor_failures, 0u);
}

TEST_F(PipelineTest, ResetCountersClearsRunState) {
  Pipeline pipeline(sim_, net_, base_config());
  pipeline.attach();
  pipeline.set_learning(false);
  send(util::cat("GET ", attack::patterns::kDirTraversal,
                 " HTTP/1.0\r\n"));
  sim_.run_until();
  EXPECT_GT(pipeline.totals().packets_tapped, 0u);
  pipeline.reset_counters();
  const PipelineTotals totals = pipeline.totals();
  EXPECT_EQ(totals.packets_tapped, 0u);
  EXPECT_EQ(totals.sensor_offered, 0u);
  EXPECT_EQ(totals.alerts, 0u);
  EXPECT_TRUE(pipeline.monitor().log().empty());
}

TEST_F(PipelineTest, SetSensitivityPropagates) {
  PipelineConfig c = base_config();
  c.anomaly_engine = true;
  Pipeline pipeline(sim_, net_, c);
  pipeline.attach();
  pipeline.set_sensitivity(0.8);
  EXPECT_DOUBLE_EQ(pipeline.sensitivity(), 0.8);
  for (const auto& sensor : pipeline.sensors()) {
    EXPECT_DOUBLE_EQ(sensor->signature_engine()->sensitivity(), 0.8);
    EXPECT_DOUBLE_EQ(sensor->anomaly_engine()->sensitivity(), 0.8);
  }
}

}  // namespace
}  // namespace idseval::ids
