#include "ids/host_agent.hpp"

#include <gtest/gtest.h>

#include "ids/rules.hpp"
#include "attack/patterns.hpp"
#include "util/strfmt.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::SimTime;

class HostAgentTest : public ::testing::Test {
 protected:
  HostAgentTest() : net_(sim_) {
    host_ = net_.add_host("node", Ipv4(10, 0, 0, 2), {}, 1e9);
    net_.add_host("sink", Ipv4(10, 0, 0, 9));
    net_.add_external_host("ext", Ipv4(198, 51, 100, 1));
  }

  HostAgent make_agent(HostAgentConfig cfg = {}) {
    SensorConfig sc;
    sc.base_ops_per_packet = 2000.0;
    return HostAgent(sim_, net_, *host_, cfg, sc);
  }

  void send_to_host(std::string payload, std::uint16_t dst_port = 80) {
    FiveTuple t;
    t.src_ip = Ipv4(198, 51, 100, 1);
    t.dst_ip = host_->address();
    t.src_port = 4000;
    t.dst_port = dst_port;
    net_.send(netsim::make_packet(sim_.next_packet_id(),
                                  sim_.next_flow_id(), sim_.now(), t,
                                  std::move(payload)));
  }

  netsim::Simulator sim_;
  netsim::Network net_;
  netsim::Host* host_ = nullptr;
};

TEST_F(HostAgentTest, ObservesDeliveredPackets) {
  auto agent = make_agent();
  agent.set_on_detection([](const Detection&) {});
  agent.attach();
  send_to_host("hello");
  sim_.run_until();
  EXPECT_EQ(agent.sensor().stats().offered, 1u);
}

TEST_F(HostAgentTest, DetectsSignatureInHostTraffic) {
  auto agent = make_agent();
  agent.set_signature_engine(std::make_unique<SignatureEngine>(
      standard_rule_set(), SignatureEngineOptions{0.5, true}));
  std::vector<Detection> got;
  agent.set_on_detection([&](const Detection& d) { got.push_back(d); });
  agent.attach();
  send_to_host(util::cat("GET ", attack::patterns::kDirTraversal,
                         " HTTP/1.0\r\n"));
  sim_.run_until();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].rule, "WEB-IIS dir traversal");
}

TEST_F(HostAgentTest, ChargesLoggingToHostCpu) {
  HostAgentConfig cfg;
  cfg.logging = LoggingLevel::kC2Audit;
  auto agent = make_agent(cfg);
  agent.set_on_detection([](const Detection&) {});
  agent.attach();
  host_->begin_accounting(sim_.now());
  for (int i = 0; i < 100; ++i) send_to_host("x");
  sim_.run_until();
  host_->end_accounting(sim_.now());
  EXPECT_GT(host_->ids_cpu_fraction(), 0.0);
}

TEST_F(HostAgentTest, LoggingLevelsOrderedByCost) {
  EXPECT_EQ(logging_ops_per_packet(LoggingLevel::kNone), 0.0);
  EXPECT_LT(logging_ops_per_packet(LoggingLevel::kNominal),
            logging_ops_per_packet(LoggingLevel::kC2Audit));
  // C2 ~5x nominal, matching the 3-5% vs ~20% figures of §2.1.
  EXPECT_NEAR(logging_ops_per_packet(LoggingLevel::kC2Audit) /
                  logging_ops_per_packet(LoggingLevel::kNominal),
              5.0, 0.5);
}

TEST_F(HostAgentTest, ReportsOverNetworkConsumeBandwidth) {
  HostAgentConfig cfg;
  cfg.report_over_network = true;
  cfg.report_sink = Ipv4(10, 0, 0, 9);
  auto agent = make_agent(cfg);
  agent.set_signature_engine(std::make_unique<SignatureEngine>(
      standard_rule_set(), SignatureEngineOptions{0.5, true}));
  int detections = 0;
  agent.set_on_detection([&](const Detection&) { ++detections; });
  agent.attach();

  int mgmt_packets = 0;
  net_.lan_switch().add_mirror([&](const Packet& p) {
    if (p.tuple.dst_port == kMgmtPort) ++mgmt_packets;
  });

  send_to_host(util::cat("GET ", attack::patterns::kDirTraversal,
                         " HTTP/1.0\r\n"));
  sim_.run_until();
  EXPECT_EQ(detections, 1);
  EXPECT_EQ(agent.reports_sent(), 1u);
  EXPECT_EQ(mgmt_packets, 1);
}

TEST_F(HostAgentTest, NeverAnalyzesOwnReports) {
  // Deliver a management-port packet to the host: the agent must skip it.
  auto agent = make_agent();
  agent.set_on_detection([](const Detection&) {});
  agent.attach();
  send_to_host("report payload", kMgmtPort);
  sim_.run_until();
  EXPECT_EQ(agent.sensor().stats().offered, 0u);
}

TEST_F(HostAgentTest, CpuShareLimitsAgentThroughput) {
  HostAgentConfig small;
  small.cpu_share = 0.01;  // 1e7 ops/s
  auto agent = make_agent(small);
  EXPECT_NEAR(agent.sensor().config().ops_per_sec, 1e7, 1.0);
}

TEST_F(HostAgentTest, LoggingLevelNames) {
  EXPECT_EQ(to_string(LoggingLevel::kNone), "none");
  EXPECT_EQ(to_string(LoggingLevel::kNominal), "nominal");
  EXPECT_EQ(to_string(LoggingLevel::kC2Audit), "c2-audit");
}

}  // namespace
}  // namespace idseval::ids
