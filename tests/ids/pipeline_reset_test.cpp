// Measurement-path correctness for reset_counters(): every window-scoped
// statistic — pipeline taps, sensor/LB/analyzer/monitor stats, console
// reaction counters (previously never cleared), and the telemetry
// registry's window instruments — must read zero after a reset, and two
// consecutive measurement windows over identical traffic must yield
// identical totals.
#include "ids/pipeline.hpp"

#include <gtest/gtest.h>

#include "attack/patterns.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
#include "util/strfmt.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::SimTime;

PipelineConfig reset_config() {
  PipelineConfig c;
  c.product = "reset-test-ids";
  c.sensor_count = 2;
  c.sensor.base_ops_per_packet = 1000.0;
  c.sensor.ops_per_sec = 1e9;
  c.signature_engine = true;
  c.rules = standard_rule_set();
  c.use_load_balancer = true;  // cover the LB stage's reset too
  c.analyzer_count = 1;
  c.monitor.notification_delay = SimTime::from_ms(10);
  c.use_console = true;
  c.console.policy = default_policy();
  c.console.reaction_delay = SimTime::from_ms(10);
  return c;
}

class PipelineResetTest : public ::testing::Test {
 protected:
  PipelineResetTest() : scope_(&registry_), net_(sim_) {
    for (int i = 1; i <= 4; ++i) {
      const Ipv4 addr(10, 0, 0, static_cast<std::uint8_t>(i));
      net_.add_host(util::cat("h", i), addr);
      internal_.push_back(addr);
    }
    net_.add_external_host("ext", Ipv4(198, 51, 100, 1));
  }

  void send(std::string payload, std::uint16_t dst_port = 80) {
    FiveTuple t;
    t.src_ip = Ipv4(198, 51, 100, 1);
    t.dst_ip = internal_[0];
    t.src_port = 4000;
    t.dst_port = dst_port;
    net_.send(netsim::make_packet(sim_.next_packet_id(),
                                  sim_.next_flow_id(), sim_.now(), t,
                                  std::move(payload)));
  }

  /// One window's worth of mixed traffic: one attack, a few clean
  /// requests. Shell-invoke is severity 4 (SNMP trap, no firewall
  /// block), so the block list — which persists across windows by
  /// design — stays empty and window comparisons stay meaningful.
  void send_window_traffic() {
    send(util::cat("data ", attack::patterns::kShellInvoke));
    for (int i = 0; i < 5; ++i) {
      send("GET /index.html HTTP/1.0\r\nHost: shop.example\r\n\r\n");
    }
  }

  std::uint64_t counter_value(std::string_view name) const {
    const telemetry::Counter* c = registry_.find_counter(name);
    return c != nullptr ? c->value() : 0;
  }

  // Registry installed before the pipeline is built so construction-time
  // handle resolution finds it (exactly like the harness does).
  telemetry::Registry registry_;
  telemetry::ScopedRegistry scope_;
  netsim::Simulator sim_;
  netsim::Network net_;
  std::vector<Ipv4> internal_;
};

TEST_F(PipelineResetTest, ResetCountersZeroesEveryWindowStatistic) {
  Pipeline pipeline(sim_, net_, reset_config());
  pipeline.attach();
  pipeline.set_learning(false);
  send_window_traffic();
  sim_.run_until();

  // The window saw real work at every stage that applies here.
  const PipelineTotals before = pipeline.totals();
  EXPECT_GT(before.packets_tapped, 0u);
  EXPECT_GT(before.sensor_offered, 0u);
  EXPECT_GT(before.detections, 0u);
  EXPECT_GT(before.alerts, 0u);
  ASSERT_NE(pipeline.console(), nullptr);
  EXPECT_GT(pipeline.console()->stats().alerts_in, 0u);
  EXPECT_GT(counter_value(telemetry::names::kPipelineTapped), 0u);
  EXPECT_GT(counter_value(telemetry::names::kLbOffered), 0u);
  EXPECT_GT(counter_value(telemetry::names::kSensorOffered), 0u);
  EXPECT_GT(counter_value(telemetry::names::kMonitorAlerts), 0u);
  const std::uint64_t mirrored_before =
      counter_value(telemetry::names::kSwitchMirrored);
  EXPECT_GT(mirrored_before, 0u);

  pipeline.reset_counters();

  // Pipeline totals all zero.
  const PipelineTotals after = pipeline.totals();
  EXPECT_EQ(after.packets_tapped, 0u);
  EXPECT_EQ(after.packets_filtered, 0u);
  EXPECT_EQ(after.sensor_offered, 0u);
  EXPECT_EQ(after.sensor_processed, 0u);
  EXPECT_EQ(after.sensor_dropped, 0u);
  EXPECT_EQ(after.lb_dropped, 0u);
  EXPECT_EQ(after.detections, 0u);
  EXPECT_EQ(after.alerts, 0u);

  // The console's reaction counters reset with the window (the original
  // bug: warmup reactions used to leak into the measured window).
  EXPECT_EQ(pipeline.console()->stats().alerts_in, 0u);
  EXPECT_EQ(pipeline.console()->stats().blocks_issued, 0u);
  EXPECT_EQ(pipeline.console()->stats().snmp_traps, 0u);
  EXPECT_EQ(pipeline.console()->stats().notifications, 0u);

  // Window-scoped telemetry instruments all zero...
  EXPECT_EQ(counter_value(telemetry::names::kPipelineTapped), 0u);
  EXPECT_EQ(counter_value(telemetry::names::kPipelineFiltered), 0u);
  EXPECT_EQ(counter_value(telemetry::names::kLbOffered), 0u);
  EXPECT_EQ(counter_value(telemetry::names::kLbDropped), 0u);
  EXPECT_EQ(counter_value(telemetry::names::kSensorOffered), 0u);
  EXPECT_EQ(counter_value(telemetry::names::kSensorDropped), 0u);
  EXPECT_EQ(counter_value(telemetry::names::kSensorDetections), 0u);
  EXPECT_EQ(counter_value(telemetry::names::kAnalyzerReports), 0u);
  EXPECT_EQ(counter_value(telemetry::names::kMonitorAlerts), 0u);
  EXPECT_EQ(counter_value(telemetry::names::kConsoleBlocks), 0u);
  for (const auto& [name, stat] : registry_.latencies()) {
    EXPECT_EQ(stat.stats().count(), 0u) << name;
    EXPECT_EQ(stat.histogram().count(), 0u) << name;
  }
  EXPECT_TRUE(telemetry::snapshot_pipeline(registry_).empty());

  // ...but the switch is network infrastructure, not a window counter:
  // its whole-run telemetry survives the reset.
  EXPECT_EQ(counter_value(telemetry::names::kSwitchMirrored),
            mirrored_before);
}

TEST_F(PipelineResetTest, ConsecutiveWindowsOverIdenticalTrafficMatch) {
  Pipeline pipeline(sim_, net_, reset_config());
  pipeline.attach();
  pipeline.set_learning(false);

  // Window 1.
  send_window_traffic();
  sim_.run_until();
  const PipelineTotals first = pipeline.totals();
  const ConsoleStats first_console = pipeline.console()->stats();
  const std::string first_snapshot =
      telemetry::to_json(telemetry::snapshot_pipeline(registry_));
  // Identical-window comparison is only meaningful if no source got
  // blocked at the switch (block lists persist across windows by
  // design).
  ASSERT_EQ(first_console.blocks_issued, 0u);

  // Let more than the analyzer's correlation window elapse so the
  // offender-correlation deque drains and window 2 starts from the same
  // effective state.
  pipeline.reset_counters();
  sim_.schedule_in(SimTime::from_sec(15), [] {});
  sim_.run_until();

  // Window 2: byte-identical traffic.
  send_window_traffic();
  sim_.run_until();
  const PipelineTotals second = pipeline.totals();
  const ConsoleStats second_console = pipeline.console()->stats();
  const std::string second_snapshot =
      telemetry::to_json(telemetry::snapshot_pipeline(registry_));

  EXPECT_EQ(first.packets_tapped, second.packets_tapped);
  EXPECT_EQ(first.packets_filtered, second.packets_filtered);
  EXPECT_EQ(first.sensor_offered, second.sensor_offered);
  EXPECT_EQ(first.sensor_processed, second.sensor_processed);
  EXPECT_EQ(first.sensor_dropped, second.sensor_dropped);
  EXPECT_EQ(first.lb_dropped, second.lb_dropped);
  EXPECT_EQ(first.detections, second.detections);
  EXPECT_EQ(first.alerts, second.alerts);
  EXPECT_EQ(first_console.alerts_in, second_console.alerts_in);
  EXPECT_EQ(first_console.blocks_issued, second_console.blocks_issued);
  EXPECT_EQ(first_console.snmp_traps, second_console.snmp_traps);
  EXPECT_EQ(first_console.notifications, second_console.notifications);
  EXPECT_EQ(first_snapshot, second_snapshot);
}

}  // namespace
}  // namespace idseval::ids
