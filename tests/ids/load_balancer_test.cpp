#include "ids/load_balancer.hpp"

#include <gtest/gtest.h>

#include <map>

#include "ids/sensor.hpp"
#include "util/rng.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::SimTime;

Packet flow_packet(netsim::Simulator& sim, std::uint64_t flow,
                   Ipv4 src = Ipv4(198, 51, 100, 1),
                   Ipv4 dst = Ipv4(10, 0, 0, 2),
                   std::uint16_t sport = 4000) {
  FiveTuple t;
  t.src_ip = src;
  t.dst_ip = dst;
  t.src_port = sport;
  t.dst_port = 80;
  return netsim::make_packet(sim.next_packet_id(), flow, sim.now(), t,
                             "payload");
}

LoadBalancerConfig cfg(LbStrategy strategy) {
  LoadBalancerConfig c;
  c.strategy = strategy;
  c.ops_per_packet = 1000.0;
  c.ops_per_sec = 1e9;
  return c;
}

TEST(LoadBalancerTest, NoneRoutesEverythingToSensorZero) {
  netsim::Simulator sim;
  LoadBalancer lb(sim, cfg(LbStrategy::kNone), 4);
  std::map<std::size_t, int> got;
  lb.set_forward([&](std::size_t idx, const Packet&) { ++got[idx]; });
  for (int i = 0; i < 20; ++i) {
    lb.ingest(flow_packet(sim, static_cast<std::uint64_t>(i)));
  }
  sim.run_until();
  EXPECT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 20);
}

TEST(LoadBalancerTest, FlowHashIsSessionConsistent) {
  netsim::Simulator sim;
  LoadBalancer lb(sim, cfg(LbStrategy::kFlowHash), 4);
  std::map<std::uint64_t, std::set<std::size_t>> flow_sensors;
  lb.set_forward([&](std::size_t idx, const Packet& p) {
    flow_sensors[p.flow_id].insert(idx);
  });
  util::Rng rng(3);
  for (int flow = 0; flow < 50; ++flow) {
    const auto sport = static_cast<std::uint16_t>(rng.uniform_u64(1024,
                                                                  65535));
    for (int pkt = 0; pkt < 10; ++pkt) {
      Packet p = flow_packet(sim, static_cast<std::uint64_t>(flow),
                             Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 2),
                             sport);
      lb.ingest(p);
    }
  }
  sim.run_until();
  for (const auto& [flow, sensors] : flow_sensors) {
    EXPECT_EQ(sensors.size(), 1u) << "flow " << flow << " split";
  }
}

TEST(LoadBalancerTest, FlowHashHandlesBothDirections) {
  netsim::Simulator sim;
  LoadBalancer lb(sim, cfg(LbStrategy::kFlowHash), 8);
  std::set<std::size_t> sensors;
  lb.set_forward([&](std::size_t idx, const Packet&) {
    sensors.insert(idx);
  });
  Packet fwd = flow_packet(sim, 1);
  Packet rev = fwd;
  std::swap(rev.tuple.src_ip, rev.tuple.dst_ip);
  std::swap(rev.tuple.src_port, rev.tuple.dst_port);
  lb.ingest(fwd);
  lb.ingest(rev);
  sim.run_until();
  EXPECT_EQ(sensors.size(), 1u);  // canonical tuple: same sensor
}

TEST(LoadBalancerTest, FlowHashSpreadsFlows) {
  netsim::Simulator sim;
  LoadBalancer lb(sim, cfg(LbStrategy::kFlowHash), 4);
  lb.set_forward([](std::size_t, const Packet&) {});
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    Packet p = flow_packet(
        sim, static_cast<std::uint64_t>(i), Ipv4(198, 51, 100, 1),
        Ipv4(10, 0, 0, static_cast<std::uint8_t>(1 + rng.index(8))),
        static_cast<std::uint16_t>(rng.uniform_u64(1024, 65535)));
    lb.ingest(p);
  }
  sim.run_until();
  EXPECT_LT(lb.stats().imbalance(), 1.2);
}

TEST(LoadBalancerTest, StaticByHostFollowsDestination) {
  netsim::Simulator sim;
  LoadBalancer lb(sim, cfg(LbStrategy::kStaticByHost), 4);
  std::map<std::uint32_t, std::set<std::size_t>> dst_sensors;
  lb.set_forward([&](std::size_t idx, const Packet& p) {
    dst_sensors[p.tuple.dst_ip.value()].insert(idx);
  });
  for (int i = 0; i < 100; ++i) {
    Packet p = flow_packet(
        sim, static_cast<std::uint64_t>(i), Ipv4(198, 51, 100, 1),
        Ipv4(10, 0, 0, static_cast<std::uint8_t>(1 + i % 8)));
    lb.ingest(p);
  }
  sim.run_until();
  for (const auto& [dst, sensors] : dst_sensors) {
    EXPECT_EQ(sensors.size(), 1u);
  }
}

TEST(LoadBalancerTest, LeastLoadedPrefersShortQueue) {
  netsim::Simulator sim;
  // Two sensors: one slow with a deep backlog, one idle.
  SensorConfig slow;
  slow.base_ops_per_packet = 1e8;
  slow.ops_per_sec = 1e9;
  Sensor busy(sim, slow);
  Sensor idle(sim, slow);
  for (int i = 0; i < 10; ++i) busy.ingest(flow_packet(sim, 1000));

  LoadBalancer lb(sim, cfg(LbStrategy::kLeastLoaded), 2);
  lb.set_sensors({&busy, &idle});
  std::map<std::size_t, int> got;
  lb.set_forward([&](std::size_t idx, const Packet&) { ++got[idx]; });
  lb.ingest(flow_packet(sim, 1));  // new flow -> idle sensor (index 1)
  sim.run_until();
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(got.count(0), 0u);
}

TEST(LoadBalancerTest, LeastLoadedPinsFlows) {
  netsim::Simulator sim;
  SensorConfig fast;
  Sensor s0(sim, fast);
  Sensor s1(sim, fast);
  LoadBalancer lb(sim, cfg(LbStrategy::kLeastLoaded), 2);
  lb.set_sensors({&s0, &s1});
  std::map<std::uint64_t, std::set<std::size_t>> flow_sensors;
  lb.set_forward([&](std::size_t idx, const Packet& p) {
    flow_sensors[p.flow_id].insert(idx);
  });
  for (int pkt = 0; pkt < 20; ++pkt) {
    lb.ingest(flow_packet(sim, 1));
    lb.ingest(flow_packet(sim, 2));
  }
  sim.run_until();
  EXPECT_EQ(flow_sensors[1].size(), 1u);
  EXPECT_EQ(flow_sensors[2].size(), 1u);
}

TEST(LoadBalancerTest, QueueOverflowDrops) {
  netsim::Simulator sim;
  LoadBalancerConfig c = cfg(LbStrategy::kFlowHash);
  c.queue_capacity = 8;
  c.ops_per_packet = 1e7;  // 10ms each — queue fills instantly
  LoadBalancer lb(sim, c, 2);
  lb.set_forward([](std::size_t, const Packet&) {});
  for (int i = 0; i < 20; ++i) {
    lb.ingest(flow_packet(sim, static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(lb.stats().dropped, 12u);
  sim.run_until();
  EXPECT_EQ(lb.stats().forwarded, 8u);
}

TEST(LoadBalancerTest, ImbalanceComputation) {
  LoadBalancerStats stats;
  stats.per_sensor = {100, 100, 100, 100};
  EXPECT_DOUBLE_EQ(stats.imbalance(), 1.0);
  stats.per_sensor = {400, 0, 0, 0};
  EXPECT_DOUBLE_EQ(stats.imbalance(), 4.0);
  stats.per_sensor = {};
  EXPECT_DOUBLE_EQ(stats.imbalance(), 1.0);
}

TEST(LoadBalancerTest, ServiceTimeFromOps) {
  netsim::Simulator sim;
  LoadBalancerConfig c = cfg(LbStrategy::kNone);
  c.ops_per_packet = 2000.0;
  c.ops_per_sec = 2e6;
  LoadBalancer lb(sim, c, 1);
  EXPECT_EQ(lb.service_time(), SimTime::from_ms(1.0));
}

TEST(LoadBalancerTest, StrategyNames) {
  EXPECT_EQ(to_string(LbStrategy::kNone), "none");
  EXPECT_EQ(to_string(LbStrategy::kStaticByHost), "static-by-host");
  EXPECT_EQ(to_string(LbStrategy::kFlowHash), "flow-hash");
  EXPECT_EQ(to_string(LbStrategy::kLeastLoaded), "least-loaded");
}

}  // namespace
}  // namespace idseval::ids
