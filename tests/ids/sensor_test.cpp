#include "ids/sensor.hpp"

#include <gtest/gtest.h>

#include "attack/patterns.hpp"
#include "ids/rules.hpp"
#include "util/strfmt.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::SimTime;

Packet plain_packet(netsim::Simulator& sim, std::string payload = "data") {
  FiveTuple t;
  t.src_ip = Ipv4(198, 51, 100, 1);
  t.dst_ip = Ipv4(10, 0, 0, 2);
  t.dst_port = netsim::ports::kHttp;
  return netsim::make_packet(sim.next_packet_id(), sim.next_flow_id(),
                             sim.now(), t, std::move(payload));
}

SensorConfig fast_config() {
  SensorConfig cfg;
  cfg.name = "s";
  cfg.base_ops_per_packet = 1000.0;
  cfg.ops_per_sec = 1e9;
  cfg.queue_capacity = 64;
  return cfg;
}

TEST(SensorTest, ProcessesPacketsAfterServiceTime) {
  netsim::Simulator sim;
  Sensor sensor(sim, fast_config());
  sensor.ingest(plain_packet(sim));
  EXPECT_EQ(sensor.stats().processed, 0u);  // not yet: service pending
  sim.run_until();
  EXPECT_EQ(sensor.stats().processed, 1u);
  EXPECT_EQ(sensor.stats().offered, 1u);
  EXPECT_EQ(sensor.stats().loss_ratio(), 0.0);
}

TEST(SensorTest, SignatureDetectionForwarded) {
  netsim::Simulator sim;
  Sensor sensor(sim, fast_config());
  sensor.set_signature_engine(std::make_unique<SignatureEngine>(
      standard_rule_set(), SignatureEngineOptions{0.5, true}));
  std::vector<Detection> got;
  sensor.set_on_detection([&](const Detection& d) { got.push_back(d); });
  sensor.ingest(plain_packet(
      sim, util::cat("GET ", attack::patterns::kDirTraversal,
                     " HTTP/1.0\r\n")));
  sim.run_until();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].rule, "WEB-IIS dir traversal");
  EXPECT_EQ(sensor.stats().detections, 1u);
}

TEST(SensorTest, DetectionTimestampedAtCompletion) {
  netsim::Simulator sim;
  SensorConfig cfg = fast_config();
  cfg.base_ops_per_packet = 1e6;  // 1 ms service
  Sensor sensor(sim, cfg);
  sensor.set_signature_engine(std::make_unique<SignatureEngine>(
      standard_rule_set(), SignatureEngineOptions{0.5, true}));
  std::vector<Detection> got;
  sensor.set_on_detection([&](const Detection& d) { got.push_back(d); });
  sensor.ingest(plain_packet(
      sim, util::cat("GET ", attack::patterns::kDirTraversal,
                     " HTTP/1.0\r\n")));
  sim.run_until();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_GE(got[0].when, SimTime::from_ms(1));
}

TEST(SensorTest, QueueOverflowDrops) {
  netsim::Simulator sim;
  SensorConfig cfg = fast_config();
  cfg.queue_capacity = 8;
  cfg.base_ops_per_packet = 1e7;  // 10 ms each: queue saturates instantly
  Sensor sensor(sim, cfg);
  for (int i = 0; i < 20; ++i) sensor.ingest(plain_packet(sim));
  EXPECT_EQ(sensor.stats().dropped_queue, 12u);
  sim.run_until();
  EXPECT_EQ(sensor.stats().processed, 8u);
  EXPECT_NEAR(sensor.stats().loss_ratio(), 12.0 / 20.0, 1e-9);
}

TEST(SensorTest, BacklogReflectsQueuedWork) {
  netsim::Simulator sim;
  SensorConfig cfg = fast_config();
  cfg.base_ops_per_packet = 1e6;  // 1 ms
  Sensor sensor(sim, cfg);
  for (int i = 0; i < 5; ++i) sensor.ingest(plain_packet(sim));
  EXPECT_EQ(sensor.backlog(), SimTime::from_ms(5));
}

TEST(SensorTest, OverloadTripsFailureAndHangStaysDown) {
  netsim::Simulator sim;
  SensorConfig cfg = fast_config();
  cfg.queue_capacity = 4;
  cfg.base_ops_per_packet = 1e8;  // 100 ms each
  cfg.overload_tolerance = SimTime::from_ms(200);
  cfg.recovery = RecoveryPolicy::kHang;
  Sensor sensor(sim, cfg);
  for (int i = 0; i < 50; ++i) sensor.ingest(plain_packet(sim));
  EXPECT_TRUE(sensor.failed());
  EXPECT_EQ(sensor.stats().failures, 1u);
  sim.run_until(SimTime::from_sec(100));
  EXPECT_TRUE(sensor.failed());  // hang: never recovers
  // Everything offered while failed is lost.
  sensor.ingest(plain_packet(sim));
  EXPECT_GT(sensor.stats().dropped_failed, 0u);
}

TEST(SensorTest, AppRestartRecoversQuicklyAndReports) {
  netsim::Simulator sim;
  SensorConfig cfg = fast_config();
  cfg.queue_capacity = 4;
  cfg.base_ops_per_packet = 1e8;
  cfg.overload_tolerance = SimTime::from_ms(200);
  cfg.recovery = RecoveryPolicy::kAppRestart;
  cfg.restart_delay = SimTime::from_sec(2);
  Sensor sensor(sim, cfg);
  std::vector<std::pair<SimTime, bool>> events;
  sensor.set_on_failure([&](const std::string&, SimTime when, bool failed) {
    events.emplace_back(when, failed);
  });
  for (int i = 0; i < 50; ++i) sensor.ingest(plain_packet(sim));
  EXPECT_TRUE(sensor.failed());
  sim.run_until(SimTime::from_sec(10));
  EXPECT_FALSE(sensor.failed());
  // kAppRestart reports the failure in near real time plus the recovery.
  ASSERT_GE(events.size(), 2u);
  EXPECT_TRUE(events[0].second);
  EXPECT_FALSE(events[1].second);
}

TEST(SensorTest, ColdRebootRecoversSlowlyWithoutRealtimeReport) {
  netsim::Simulator sim;
  SensorConfig cfg = fast_config();
  cfg.queue_capacity = 4;
  cfg.base_ops_per_packet = 1e8;
  cfg.overload_tolerance = SimTime::from_ms(200);
  cfg.recovery = RecoveryPolicy::kColdReboot;
  cfg.reboot_delay = SimTime::from_sec(40);
  Sensor sensor(sim, cfg);
  int failure_reports = 0;
  sensor.set_on_failure([&](const std::string&, SimTime, bool failed) {
    if (failed) ++failure_reports;
  });
  for (int i = 0; i < 50; ++i) sensor.ingest(plain_packet(sim));
  EXPECT_TRUE(sensor.failed());
  EXPECT_EQ(failure_reports, 0);  // average anchor: no real-time report
  sim.run_until(SimTime::from_sec(20));
  EXPECT_TRUE(sensor.failed());  // still rebooting
  sim.run_until(SimTime::from_sec(60));
  EXPECT_FALSE(sensor.failed());
}

TEST(SensorTest, HostChargingAccountsIdsWork) {
  netsim::Simulator sim;
  netsim::Host host("h", Ipv4(10, 0, 0, 1), 1e9);
  SensorConfig cfg = fast_config();
  cfg.base_ops_per_packet = 5e6;
  Sensor sensor(sim, cfg);
  sensor.bind_host(&host);
  host.begin_accounting(sim.now());
  for (int i = 0; i < 100; ++i) sensor.ingest(plain_packet(sim));
  sim.run_until();
  host.end_accounting(sim.now());
  // 100 packets x 5e6 ops on 1e9 ops/s over the elapsed window.
  EXPECT_GT(host.ids_cpu_fraction(), 0.0);
}

TEST(SensorTest, SensitivityPropagatesToEngines) {
  netsim::Simulator sim;
  Sensor sensor(sim, fast_config());
  sensor.set_signature_engine(std::make_unique<SignatureEngine>(
      standard_rule_set(), SignatureEngineOptions{0.2, true}));
  AnomalyEngineOptions opts;
  opts.sensitivity = 0.2;
  sensor.set_anomaly_engine(std::make_unique<AnomalyEngine>(opts));
  sensor.set_sensitivity(0.9);
  EXPECT_DOUBLE_EQ(sensor.signature_engine()->sensitivity(), 0.9);
  EXPECT_DOUBLE_EQ(sensor.anomaly_engine()->sensitivity(), 0.9);
}

TEST(SensorTest, RecoveryPolicyNames) {
  EXPECT_EQ(to_string(RecoveryPolicy::kHang), "hang");
  EXPECT_EQ(to_string(RecoveryPolicy::kColdReboot), "cold-reboot");
  EXPECT_EQ(to_string(RecoveryPolicy::kAppRestart), "app-restart");
}

}  // namespace
}  // namespace idseval::ids
