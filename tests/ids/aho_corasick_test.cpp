#include "ids/aho_corasick.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "traffic/payload.hpp"
#include "util/rng.hpp"

namespace idseval::ids {
namespace {

TEST(AhoCorasickTest, RejectsEmptyPattern) {
  EXPECT_THROW(AhoCorasick({"ok", ""}), std::invalid_argument);
}

TEST(AhoCorasickTest, FindsSinglePattern) {
  const AhoCorasick ac({"needle"});
  const auto matches = ac.find_all("hay needle stack");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].pattern_id, 0u);
  EXPECT_EQ(matches[0].end_offset, 10u);  // one past 'needle'
}

TEST(AhoCorasickTest, NoMatchIsEmpty) {
  const AhoCorasick ac({"needle"});
  EXPECT_TRUE(ac.find_all("plain haystack").empty());
  EXPECT_FALSE(ac.contains_any("plain haystack"));
}

TEST(AhoCorasickTest, FindsOverlappingPatterns) {
  const AhoCorasick ac({"he", "she", "his", "hers"});
  const auto matches = ac.find_all("ushers");
  // "ushers" contains she, he, hers.
  std::vector<std::size_t> ids;
  for (const auto& m : matches) ids.push_back(m.pattern_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(AhoCorasickTest, RepeatedOccurrencesAllReported) {
  const AhoCorasick ac({"ab"});
  EXPECT_EQ(ac.find_all("ababab").size(), 3u);
}

TEST(AhoCorasickTest, FindSetDeduplicates) {
  const AhoCorasick ac({"ab", "zz"});
  const auto set = ac.find_set("abababab");
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0], 0u);
}

TEST(AhoCorasickTest, PatternInsidePattern) {
  const AhoCorasick ac({"/etc/passwd", "passwd"});
  const auto set = ac.find_set("GET /../../etc/passwd HTTP/1.0");
  EXPECT_EQ(set.size(), 2u);
}

TEST(AhoCorasickTest, BinaryPatterns) {
  const std::string nop_sled = "\x90\x90\x90\x90\x90\x90";
  const AhoCorasick ac({nop_sled});
  std::string payload = "header";
  payload += std::string(10, '\x90');
  payload += "tail";
  EXPECT_TRUE(ac.contains_any(payload));
  EXPECT_FALSE(ac.contains_any("header tail"));
}

TEST(AhoCorasickTest, MatchAtStartAndEnd) {
  const AhoCorasick ac({"start", "end"});
  const auto set = ac.find_set("start middle end");
  EXPECT_EQ(set.size(), 2u);
}

TEST(AhoCorasickTest, PatternEqualsText) {
  const AhoCorasick ac({"exact"});
  EXPECT_TRUE(ac.contains_any("exact"));
}

TEST(AhoCorasickTest, EmptyTextMatchesNothing) {
  const AhoCorasick ac({"x"});
  EXPECT_FALSE(ac.contains_any(""));
  EXPECT_TRUE(ac.find_all("").empty());
}

TEST(AhoCorasickTest, AccessorsAndNodeCount) {
  const AhoCorasick ac({"abc", "abd"});
  EXPECT_EQ(ac.pattern_count(), 2u);
  EXPECT_EQ(ac.pattern(1), "abd");
  // root + a + b + c + d = 5 nodes (shared prefix "ab").
  EXPECT_EQ(ac.node_count(), 5u);
}

TEST(AhoCorasickTest, AgreesWithNaiveSearchOnRandomText) {
  const std::vector<std::string> patterns = {"track", "GET /", "passwd",
                                             "\r\n\r\n", "seq="};
  const AhoCorasick ac(patterns);
  util::Rng rng(123);
  for (int round = 0; round < 50; ++round) {
    const auto kind = static_cast<traffic::PayloadKind>(round % 7);
    const std::string text = traffic::synthesize(kind, 500, rng);
    const auto set = ac.find_set(text);
    for (std::size_t pid = 0; pid < patterns.size(); ++pid) {
      const bool naive = text.find(patterns[pid]) != std::string::npos;
      const bool found =
          std::find(set.begin(), set.end(), pid) != set.end();
      EXPECT_EQ(naive, found)
          << "pattern '" << patterns[pid] << "' round " << round;
    }
  }
}

TEST(AhoCorasickTest, ManyPatternsStress) {
  std::vector<std::string> patterns;
  util::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    patterns.push_back(traffic::random_printable(8, rng));
  }
  const AhoCorasick ac(patterns);
  // Every pattern must be found in a text that embeds it.
  for (std::size_t pid = 0; pid < patterns.size(); ++pid) {
    const std::string text = "prefix " + patterns[pid] + " suffix";
    const auto set = ac.find_set(text);
    EXPECT_TRUE(std::find(set.begin(), set.end(), pid) != set.end());
  }
}

}  // namespace
}  // namespace idseval::ids
