#include "ids/console.hpp"

#include <gtest/gtest.h>

#include "netsim/network.hpp"

namespace idseval::ids {
namespace {

using netsim::Ipv4;
using netsim::SimTime;

Alert alert(int severity, double confidence = 0.9,
            Ipv4 src = Ipv4(198, 51, 100, 1)) {
  Alert a;
  a.id = 1;
  a.flow_id = 10;
  a.tuple.src_ip = src;
  a.tuple.dst_ip = Ipv4(10, 0, 0, 2);
  a.severity = severity;
  a.confidence = confidence;
  a.rule = "test";
  return a;
}

class ConsoleTest : public ::testing::Test {
 protected:
  ConsoleTest() : net_(sim_) {}

  ManagementConsole make(ConsoleConfig cfg = {}) {
    if (cfg.policy.empty()) cfg.policy = default_policy();
    ManagementConsole console(sim_, cfg);
    console.attach_switch(&net_.lan_switch());
    return console;
  }

  netsim::Simulator sim_;
  netsim::Network net_;
};

TEST_F(ConsoleTest, CriticalAlertBlocksSourceAfterDelay) {
  ConsoleConfig cfg;
  cfg.reaction_delay = SimTime::from_ms(500);
  auto console = make(cfg);
  console.on_alert(alert(5));
  EXPECT_FALSE(net_.lan_switch().is_blocked(Ipv4(198, 51, 100, 1)));
  sim_.run_until();
  EXPECT_TRUE(net_.lan_switch().is_blocked(Ipv4(198, 51, 100, 1)));
  EXPECT_EQ(console.stats().blocks_issued, 1u);
}

TEST_F(ConsoleTest, LowSeverityOnlyLogs) {
  auto console = make();
  console.on_alert(alert(2));
  sim_.run_until();
  EXPECT_EQ(console.stats().blocks_issued, 0u);
  EXPECT_EQ(console.stats().snmp_traps, 0u);
  EXPECT_EQ(net_.lan_switch().blocked_count(), 0u);
}

TEST_F(ConsoleTest, Severity4SendsSnmpTrap) {
  auto console = make();
  console.on_alert(alert(4));
  sim_.run_until();
  EXPECT_EQ(console.stats().snmp_traps, 1u);
  EXPECT_EQ(console.stats().blocks_issued, 0u);
}

TEST_F(ConsoleTest, LowConfidenceCriticalDoesNotBlock) {
  // default_policy requires confidence >= 0.6 for blocking: faulty policy
  // risks shutting out legitimate users, so weak evidence never blocks.
  auto console = make();
  console.on_alert(alert(5, /*confidence=*/0.3));
  sim_.run_until();
  EXPECT_EQ(console.stats().blocks_issued, 0u);
  // But the severity-4 SNMP rule still applies.
  EXPECT_EQ(console.stats().snmp_traps, 1u);
}

TEST_F(ConsoleTest, DuplicateOffenderBlockedOnce) {
  auto console = make();
  console.on_alert(alert(5));
  console.on_alert(alert(5));
  sim_.run_until();
  EXPECT_EQ(console.stats().blocks_issued, 1u);
  EXPECT_EQ(console.blocked_sources().size(), 1u);
}

TEST_F(ConsoleTest, CapabilityFlagsGateActions) {
  ConsoleConfig cfg;
  cfg.can_block_firewall = false;
  cfg.can_snmp = false;
  auto console = make(cfg);
  console.on_alert(alert(5));
  sim_.run_until();
  EXPECT_EQ(console.stats().blocks_issued, 0u);
  EXPECT_EQ(console.stats().snmp_traps, 0u);
  EXPECT_EQ(net_.lan_switch().blocked_count(), 0u);
}

TEST_F(ConsoleTest, HoneypotRedirectRequiresCapability) {
  ConsoleConfig cfg;
  cfg.can_redirect_router = true;
  cfg.policy = {PolicyRule{4, 0.0, ReactionAction::kRedirectHoneypot}};
  auto console = make(cfg);
  console.on_alert(alert(4));
  sim_.run_until();
  EXPECT_EQ(console.stats().redirects, 1u);
}

TEST_F(ConsoleTest, NotifyCountsNotifications) {
  ConsoleConfig cfg;
  cfg.policy = {PolicyRule{1, 0.0, ReactionAction::kNotifyOperator}};
  auto console = make(cfg);
  console.on_alert(alert(3));
  console.on_alert(alert(1));
  EXPECT_EQ(console.stats().notifications, 2u);
  EXPECT_EQ(console.stats().alerts_in, 2u);
}

TEST_F(ConsoleTest, MultiplePolicyRulesAllApply) {
  // A severity-5 alert matches both the block rule (>=5) and the SNMP
  // rule (>=4): both actions fire.
  auto console = make();
  console.on_alert(alert(5));
  sim_.run_until();
  EXPECT_EQ(console.stats().blocks_issued, 1u);
  EXPECT_EQ(console.stats().snmp_traps, 1u);
}

TEST(ReactionActionTest, Names) {
  EXPECT_EQ(to_string(ReactionAction::kLogOnly), "log-only");
  EXPECT_EQ(to_string(ReactionAction::kBlockSource), "block-source");
  EXPECT_EQ(to_string(ReactionAction::kSnmpTrap), "snmp-trap");
  EXPECT_EQ(to_string(ReactionAction::kRedirectHoneypot),
            "redirect-honeypot");
  EXPECT_EQ(to_string(ReactionAction::kNotifyOperator), "notify");
}

}  // namespace
}  // namespace idseval::ids
