// Per-instance sensor telemetry: a sensor constructed with a
// telemetry_scope bumps "<scope>.offered" etc. beside the aggregate
// sensor.* names, so overload profiles can localize which sensor
// saturates first; the scoped counters must partition the aggregate.
#include <gtest/gtest.h>

#include <vector>

#include "ids/sensor.hpp"
#include "netsim/packet.hpp"
#include "telemetry/registry.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;

Packet plain_packet(netsim::Simulator& sim) {
  FiveTuple t;
  t.src_ip = Ipv4(198, 51, 100, 1);
  t.dst_ip = Ipv4(10, 0, 0, 2);
  t.dst_port = netsim::ports::kHttp;
  return netsim::make_packet(sim.next_packet_id(), sim.next_flow_id(),
                             sim.now(), t, "data");
}

SensorConfig scoped_config(std::string scope) {
  SensorConfig cfg;
  cfg.name = "s";
  cfg.base_ops_per_packet = 1000.0;
  cfg.ops_per_sec = 1e9;
  cfg.queue_capacity = 64;
  cfg.telemetry_scope = std::move(scope);
  return cfg;
}

std::uint64_t counter_value(const telemetry::Registry& reg,
                            std::string_view name) {
  const telemetry::Counter* c = reg.find_counter(name);
  return c != nullptr ? c->value() : 0;
}

TEST(PerSensorTelemetryTest, ScopedCountersPartitionTheAggregate) {
  telemetry::Registry reg;
  telemetry::ScopedRegistry scope(&reg);
  netsim::Simulator sim;
  // Handles resolve at construction, inside the registry scope.
  Sensor s0(sim, scoped_config("sensor.0"));
  Sensor s1(sim, scoped_config("sensor.1"));
  std::vector<Packet> batch;
  for (int i = 0; i < 5; ++i) batch.push_back(plain_packet(sim));
  s0.ingest_batch(batch.data(), batch.size());
  for (int i = 0; i < 3; ++i) s1.ingest(plain_packet(sim));
  sim.run_until();

  EXPECT_EQ(counter_value(reg, "sensor.0.offered"), 5u);
  EXPECT_EQ(counter_value(reg, "sensor.1.offered"), 3u);
  EXPECT_EQ(counter_value(reg, telemetry::names::kSensorOffered), 8u);
  // Per-instance service stats exist beside the aggregate.
  const telemetry::LatencyStat* s0_service =
      reg.find_latency("sensor.0.service");
  ASSERT_NE(s0_service, nullptr);
  EXPECT_EQ(s0_service->stats().count(), 5u);
}

TEST(PerSensorTelemetryTest, NoScopeMeansNoScopedInstruments) {
  telemetry::Registry reg;
  telemetry::ScopedRegistry scope(&reg);
  netsim::Simulator sim;
  Sensor sensor(sim, scoped_config(""));
  sensor.ingest(plain_packet(sim));
  sim.run_until();
  EXPECT_EQ(counter_value(reg, telemetry::names::kSensorOffered), 1u);
  EXPECT_EQ(reg.find_counter("sensor.0.offered"), nullptr);
  EXPECT_EQ(reg.find_latency("sensor.0.service"), nullptr);
}

TEST(PerSensorTelemetryTest, ResetStatsClearsScopedInstruments) {
  telemetry::Registry reg;
  telemetry::ScopedRegistry scope(&reg);
  netsim::Simulator sim;
  Sensor sensor(sim, scoped_config("sensor.0"));
  sensor.ingest(plain_packet(sim));
  sim.run_until();
  ASSERT_EQ(counter_value(reg, "sensor.0.offered"), 1u);
  sensor.reset_stats();
  EXPECT_EQ(counter_value(reg, "sensor.0.offered"), 0u);
}

TEST(PerSensorTelemetryTest, ScopedNameBuildsDottedNames) {
  EXPECT_EQ(telemetry::scoped_name("sensor.0", "offered"),
            "sensor.0.offered");
  EXPECT_EQ(telemetry::scoped_name("", "offered"), "");
}

}  // namespace
}  // namespace idseval::ids
