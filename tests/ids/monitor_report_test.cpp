#include <gtest/gtest.h>

#include "ids/monitor.hpp"

namespace idseval::ids {
namespace {

using netsim::Ipv4;
using netsim::SimTime;

ThreatReport report_for(std::uint64_t flow, int severity, Ipv4 src,
                        DetectionMethod method,
                        SimTime when = SimTime::zero()) {
  ThreatReport r;
  r.primary.flow_id = flow;
  r.primary.tuple.src_ip = src;
  r.primary.tuple.dst_ip = Ipv4(10, 0, 0, 2);
  r.primary.rule = "r";
  r.primary.severity = severity;
  r.primary.method = method;
  r.primary.when = when;
  r.severity = severity;
  r.when = when;
  return r;
}

class MonitorReportTest : public ::testing::Test {
 protected:
  MonitorReportTest() : monitor_(sim_, MonitorConfig{}) {
    // Three alerts from one offender, one from another, spread in time.
    int flow = 0;
    for (const double t : {1.0, 2.0, 3.0}) {
      sim_.schedule_at(SimTime::from_sec(t), [this, flow, t] {
        monitor_.submit(report_for(static_cast<std::uint64_t>(100 + flow),
                                   5, Ipv4(198, 51, 100, 1),
                                   DetectionMethod::kSignature,
                                   SimTime::from_sec(t)));
      });
      ++flow;
    }
    sim_.schedule_at(SimTime::from_sec(8), [this] {
      monitor_.submit(report_for(200, 3, Ipv4(198, 51, 100, 2),
                                 DetectionMethod::kAnomaly,
                                 SimTime::from_sec(8)));
    });
    sim_.run_until();
  }

  netsim::Simulator sim_;
  Monitor monitor_;
};

TEST_F(MonitorReportTest, SummaryCountsAndSections) {
  const std::string report = monitor_.render_report(
      SimTime::zero(), SimTime::from_sec(10), /*trend_buckets=*/5);
  EXPECT_NE(report.find("alerts: 4"), std::string::npos) << report;
  EXPECT_NE(report.find("S5=3"), std::string::npos);
  EXPECT_NE(report.find("S3=1"), std::string::npos);
  EXPECT_NE(report.find("signature=3"), std::string::npos);
  EXPECT_NE(report.find("anomaly=1"), std::string::npos);
  EXPECT_NE(report.find("198.51.100.1  3 alerts"), std::string::npos);
}

TEST_F(MonitorReportTest, TrendBucketsPlaceAlertsInTime) {
  const std::string report = monitor_.render_report(
      SimTime::zero(), SimTime::from_sec(10), /*trend_buckets=*/10);
  // Alerts at ~1s, ~2s, ~3s and ~8s (plus notification delay) -> trend
  // line has nonzero early buckets and a nonzero late bucket.
  const auto pos = report.find("trend:");
  ASSERT_NE(pos, std::string::npos);
  const std::string trend = report.substr(pos);
  EXPECT_NE(trend.find('1'), std::string::npos);
}

TEST_F(MonitorReportTest, WindowFiltersAlerts) {
  const std::string report = monitor_.render_report(
      SimTime::from_sec(5), SimTime::from_sec(10));
  EXPECT_NE(report.find("alerts: 1"), std::string::npos) << report;
}

TEST_F(MonitorReportTest, HistoricalQueries) {
  EXPECT_EQ(monitor_.alerts_from(Ipv4(198, 51, 100, 1)).size(), 3u);
  EXPECT_EQ(monitor_.alerts_from(Ipv4(198, 51, 100, 9)).size(), 0u);
  EXPECT_EQ(monitor_.alerts_at_least(4).size(), 3u);
  EXPECT_EQ(monitor_.alerts_at_least(1).size(), 4u);
}

}  // namespace
}  // namespace idseval::ids
