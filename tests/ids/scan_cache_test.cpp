// Interned-payload scan cache (ids/scan_cache.hpp): the memo must be a
// pure optimization — detections AND pre-gate evidence byte-identical
// with the cache on or off — while actually short-circuiting repeated
// payload scans. Covers the PayloadMemo container (pinning, capacity),
// the entropy memo in the anomaly engine, and the boundary-limited
// reassembly merge in the signature engine (a pattern straddling the
// packet boundary plus the same pattern fully inside the payload must
// deduplicate exactly as the legacy full rescan did).
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "attack/patterns.hpp"
#include "ids/anomaly_engine.hpp"
#include "ids/scan_cache.hpp"
#include "ids/signature_engine.hpp"
#include "util/rng.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::SimTime;

using PayloadRef = std::shared_ptr<const std::string>;

PayloadRef intern(std::string s) {
  return std::make_shared<const std::string>(std::move(s));
}

Packet shared_packet(std::uint64_t flow, std::uint32_t seq, PayloadRef ref,
                     std::uint16_t dst_port = netsim::ports::kHttp) {
  FiveTuple t;
  t.src_ip = Ipv4(198, 51, 100, 1);
  t.dst_ip = Ipv4(10, 0, 0, 2);
  t.src_port = 4000;
  t.dst_port = dst_port;
  Packet p = netsim::make_packet(flow * 1000 + seq, flow, SimTime::zero(),
                                 t, std::move(ref));
  p.seq = seq;
  return p;
}

/// Records every pre-gate observation so cached and legacy engines can
/// be compared on the full evidence stream, not just gated detections.
struct RecordingSink : EvidenceSink {
  struct Obs {
    std::uint64_t flow;
    EvidenceChannel channel;
    double strength;
    double critical;
    bool strict;
    bool operator==(const Obs&) const = default;
  };
  std::vector<Obs> observations;
  void observe(std::uint64_t flow_id, EvidenceChannel channel,
               double strength, double critical_sensitivity,
               bool strict_trigger) override {
    observations.push_back(
        Obs{flow_id, channel, strength, critical_sensitivity, strict_trigger});
  }
};

void expect_same_detections(const std::vector<Detection>& a,
                            const std::vector<Detection>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].flow_id, b[i].flow_id) << i;
    EXPECT_EQ(a[i].rule, b[i].rule) << i;
    EXPECT_EQ(a[i].when.ns(), b[i].when.ns()) << i;
    EXPECT_EQ(a[i].confidence, b[i].confidence) << i;
    EXPECT_EQ(a[i].severity, b[i].severity) << i;
    EXPECT_EQ(a[i].method, b[i].method) << i;
  }
}

// --- PayloadMemo container ------------------------------------------------

TEST(ScanCacheTest, MemoStoresFindsAndCounts) {
  PayloadMemo<int> memo;
  const PayloadRef p = intern("hello");
  EXPECT_EQ(memo.find(p), nullptr);  // miss
  EXPECT_EQ(memo.stats().misses, 1u);

  const int* stored = memo.store(p, 42);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(*stored, 42);
  const int* hit = memo.find(p);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42);
  EXPECT_EQ(memo.stats().hits, 1u);

  memo.credit_saved(p->size());
  EXPECT_EQ(memo.stats().bytes_saved, 5u);
  EXPECT_DOUBLE_EQ(memo.stats().hit_ratio(), 0.5);
}

TEST(ScanCacheTest, MemoPinsThePayloadAgainstAddressReuse) {
  // The entry must keep the string alive: if the caller drops its ref,
  // the allocator could otherwise hand the same address to a different
  // payload and a later lookup would return stale results.
  PayloadMemo<int> memo;
  PayloadRef p = intern("pinned");
  const long before = p.use_count();
  memo.store(p, 7);
  EXPECT_EQ(p.use_count(), before + 1);
  const std::string* raw = p.get();
  p.reset();  // memo's pin must keep the string alive
  EXPECT_EQ(*raw, "pinned");
  memo.clear();  // releases the pin
  EXPECT_EQ(memo.size(), 0u);
}

TEST(ScanCacheTest, MemoCapacityBoundsPopulation) {
  PayloadMemo<int> memo(/*capacity=*/2);
  const PayloadRef a = intern("a");
  const PayloadRef b = intern("b");
  const PayloadRef c = intern("c");
  EXPECT_NE(memo.store(a, 1), nullptr);
  EXPECT_NE(memo.store(b, 2), nullptr);
  EXPECT_EQ(memo.store(c, 3), nullptr);  // full: scanned uncached forever
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_EQ(memo.find(c), nullptr);
  ASSERT_NE(memo.find(a), nullptr);  // earlier entries unaffected
}

TEST(ScanCacheTest, ReserveCapacityRaisesButNeverLowers) {
  // Adaptive PayloadPool growth raises the memo ceiling by its headroom;
  // the raise must be monotonic — entries are already pinned, so a lower
  // request is refused rather than evicting.
  PayloadMemo<int> memo(/*capacity=*/2);
  EXPECT_EQ(memo.capacity(), 2u);
  memo.reserve_capacity(1);
  EXPECT_EQ(memo.capacity(), 2u);
  memo.reserve_capacity(4);
  EXPECT_EQ(memo.capacity(), 4u);

  const PayloadRef a = intern("ra");
  const PayloadRef b = intern("rb");
  const PayloadRef c = intern("rc");
  const PayloadRef d = intern("rd");
  const PayloadRef e = intern("re");
  EXPECT_NE(memo.store(a, 1), nullptr);
  EXPECT_NE(memo.store(b, 2), nullptr);
  // Beyond the original ceiling but inside the reserved one.
  EXPECT_NE(memo.store(c, 3), nullptr);
  EXPECT_NE(memo.store(d, 4), nullptr);
  EXPECT_EQ(memo.store(e, 5), nullptr);  // reserved ceiling still bounds
  EXPECT_EQ(memo.size(), 4u);
}

// --- Entropy memo (anomaly engine) ----------------------------------------

TEST(ScanCacheTest, EntropyMemoIsBitIdenticalToRecomputation) {
  AnomalyEngineOptions cached_opt;
  AnomalyEngineOptions legacy_opt;
  legacy_opt.scan_cache = false;
  AnomalyEngine cached(cached_opt);
  AnomalyEngine legacy(legacy_opt);
  RecordingSink cached_sink;
  RecordingSink legacy_sink;
  cached.set_evidence_sink(&cached_sink);
  legacy.set_evidence_sink(&legacy_sink);

  // A handful of interned payloads cycled many times: train both models,
  // then detect. Entropy feeds EWMA baselines, z-scores, and winsorized
  // learning, so any cached-value drift would diverge the outputs.
  std::vector<PayloadRef> pool;
  util::Rng rng(99);
  for (int v = 0; v < 6; ++v) {
    std::string s(static_cast<std::size_t>(64 + 32 * v), '\0');
    for (char& ch : s) {
      ch = static_cast<char>('a' + rng.index(static_cast<std::size_t>(
                                       2 + 3 * v)));
    }
    pool.push_back(intern(std::move(s)));
  }
  std::vector<Detection> cached_out;
  std::vector<Detection> legacy_out;
  for (int i = 0; i < 400; ++i) {
    if (i == 150) {
      cached.set_mode(AnomalyEngine::Mode::kDetecting);
      legacy.set_mode(AnomalyEngine::Mode::kDetecting);
    }
    const Packet p =
        shared_packet(1 + static_cast<std::uint64_t>(i % 5),
                      static_cast<std::uint32_t>(i),
                      pool[static_cast<std::size_t>(i) % 6]);
    const SimTime now = SimTime::from_ms(10 * i);
    cached.process(p, now, cached_out);
    legacy.process(p, now, legacy_out);
  }
  expect_same_detections(cached_out, legacy_out);
  EXPECT_EQ(cached_sink.observations, legacy_sink.observations);
  EXPECT_GT(cached.scan_cache_stats().hits, 0u);
  EXPECT_GT(cached.scan_cache_stats().bytes_saved, 0u);
  EXPECT_EQ(legacy.scan_cache_stats().hits + legacy.scan_cache_stats().misses,
            0u);
}

// --- Boundary-limited reassembly merge (signature engine) -----------------

SignatureEngine signature_engine(bool cache, bool reassembly = true) {
  SignatureEngineOptions opt;
  opt.sensitivity = 0.9;  // admit weak rules: more hits to compare
  opt.stream_reassembly = reassembly;
  opt.scan_cache = cache;
  return SignatureEngine(standard_rule_set(), opt);
}

TEST(ScanCacheTest, BoundaryStraddleAndInsideHitDeduplicate) {
  // The same pattern appears twice in flight: once straddling the packet
  // boundary (only the boundary-window rescan can see it) and once fully
  // inside the second payload (the cached payload hits see it). The
  // merged result must equal the legacy full rescan exactly: one
  // evidence observation per scan that saw the id, one detection total.
  const std::string traversal(attack::patterns::kDirTraversal);
  const std::string head = "GET " + traversal.substr(0, 7);
  const std::string rest =
      traversal.substr(7) + " also " + traversal + " again";
  const PayloadRef head_ref = intern(head);
  const PayloadRef rest_ref = intern(rest);

  auto cached = signature_engine(true);
  auto legacy = signature_engine(false);
  RecordingSink cached_sink;
  RecordingSink legacy_sink;
  cached.set_evidence_sink(&cached_sink);
  legacy.set_evidence_sink(&legacy_sink);

  std::vector<Detection> cached_out;
  std::vector<Detection> legacy_out;
  // Two flows replay the same split so the second flow hits the memo.
  for (std::uint64_t flow = 1; flow <= 2; ++flow) {
    cached.process(shared_packet(flow, 1, head_ref), SimTime::from_ms(flow),
                   cached_out);
    cached.process(shared_packet(flow, 2, rest_ref), SimTime::from_ms(flow),
                   cached_out);
    legacy.process(shared_packet(flow, 1, head_ref), SimTime::from_ms(flow),
                   legacy_out);
    legacy.process(shared_packet(flow, 2, rest_ref), SimTime::from_ms(flow),
                   legacy_out);
  }
  expect_same_detections(cached_out, legacy_out);
  EXPECT_EQ(cached_sink.observations, legacy_sink.observations);

  // The split pattern fired per flow (dedup is per (rule, flow))...
  std::size_t traversal_detections = 0;
  for (const auto& d : cached_out) {
    if (d.rule == "WEB-IIS dir traversal") ++traversal_detections;
  }
  EXPECT_EQ(traversal_detections, 2u);
  // ...and the replayed payloads were served from the memo.
  EXPECT_GT(cached.scan_cache_stats().hits, 0u);
}

TEST(ScanCacheTest, CachedEngineMatchesLegacyOnRandomizedStreams) {
  // Randomized replay over shared interned payloads — pattern fragments,
  // whole patterns, benign noise — through reassembling cached vs legacy
  // engines. Detections and evidence must be byte-identical, with real
  // memo traffic on the cached side.
  const std::string traversal(attack::patterns::kDirTraversal);
  std::vector<PayloadRef> pool = {
      intern("GET /index.html HTTP/1.0\r\n"),
      intern(traversal.substr(0, 9)),
      intern(traversal.substr(9)),
      intern("payload " + traversal + " embedded"),
      intern(std::string(100, 'x')),
      intern("\x90\x90\x90"),
      intern("\x90\x90\x90\x90 trailer"),
  };
  auto cached = signature_engine(true);
  auto legacy = signature_engine(false);
  RecordingSink cached_sink;
  RecordingSink legacy_sink;
  cached.set_evidence_sink(&cached_sink);
  legacy.set_evidence_sink(&legacy_sink);

  util::Rng rng(4242);
  std::vector<Detection> cached_out;
  std::vector<Detection> legacy_out;
  for (int i = 0; i < 600; ++i) {
    const std::uint64_t flow = 1 + rng.index(8);
    const PayloadRef& ref = pool[rng.index(pool.size())];
    const Packet p = shared_packet(flow, static_cast<std::uint32_t>(i), ref);
    const SimTime now = SimTime::from_ms(i);
    cached.process(p, now, cached_out);
    legacy.process(p, now, legacy_out);
  }
  expect_same_detections(cached_out, legacy_out);
  EXPECT_EQ(cached_sink.observations, legacy_sink.observations);
  EXPECT_GT(cached.scan_cache_stats().hits, 100u);
  EXPECT_LE(cached.scan_cache_stats().misses, pool.size());
}

TEST(ScanCacheTest, NonReassemblingCachedEngineMatchesLegacy) {
  // Without reassembly the cached path is a pure find_set memo.
  const std::string traversal(attack::patterns::kDirTraversal);
  const PayloadRef hit_ref = intern("GET " + traversal + " HTTP/1.0");
  const PayloadRef miss_ref = intern("GET /style.css HTTP/1.0");
  auto cached = signature_engine(true, /*reassembly=*/false);
  auto legacy = signature_engine(false, /*reassembly=*/false);
  std::vector<Detection> cached_out;
  std::vector<Detection> legacy_out;
  for (std::uint64_t flow = 1; flow <= 4; ++flow) {
    for (std::uint32_t seq = 1; seq <= 3; ++seq) {
      const PayloadRef& ref = seq == 2 ? hit_ref : miss_ref;
      cached.process(shared_packet(flow, seq, ref), SimTime::from_ms(seq),
                     cached_out);
      legacy.process(shared_packet(flow, seq, ref), SimTime::from_ms(seq),
                     legacy_out);
    }
  }
  expect_same_detections(cached_out, legacy_out);
  EXPECT_EQ(cached.scan_cache_stats().misses, 2u);  // one per distinct ref
  EXPECT_EQ(cached.scan_cache_stats().hits, 10u);
}

}  // namespace
}  // namespace idseval::ids
