// Data Pool Selectability (Table 2) as an executable feature: the tap
// filter restricts what the IDS analyzes by port/protocol/locality, and
// the pipeline accounts for what it excluded.
#include <gtest/gtest.h>

#include "ids/pipeline.hpp"
#include "ids/rules.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::Protocol;
using netsim::SimTime;

Packet packet_to(Ipv4 src, Ipv4 dst, std::uint16_t dst_port,
                 Protocol proto = Protocol::kTcp) {
  FiveTuple t;
  t.src_ip = src;
  t.dst_ip = dst;
  t.src_port = 4000;
  t.dst_port = dst_port;
  t.proto = proto;
  return netsim::make_packet(1, 1, SimTime::zero(), t, "payload");
}

TEST(TapFilterTest, EmptyFilterSelectsEverything) {
  const TapFilter filter;
  EXPECT_TRUE(filter.empty());
  EXPECT_TRUE(filter.selects(
      packet_to(Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 1), 80)));
}

TEST(TapFilterTest, ExcludedPortRejected) {
  TapFilter filter;
  filter.exclude_dst_ports = {netsim::ports::kClusterRpc};
  EXPECT_FALSE(filter.selects(packet_to(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2),
                                        netsim::ports::kClusterRpc)));
  EXPECT_TRUE(filter.selects(
      packet_to(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 80)));
}

TEST(TapFilterTest, ProtocolWhitelist) {
  TapFilter filter;
  filter.include_protocols = {Protocol::kTcp};
  EXPECT_TRUE(filter.selects(
      packet_to(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 80, Protocol::kTcp)));
  EXPECT_FALSE(filter.selects(
      packet_to(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 53, Protocol::kUdp)));
}

TEST(TapFilterTest, InternalToInternalExclusion) {
  TapFilter filter;
  filter.exclude_internal_to_internal = true;
  EXPECT_FALSE(filter.selects(
      packet_to(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 80)));
  EXPECT_TRUE(filter.selects(
      packet_to(Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 2), 80)));
}

TEST(TapFilterTest, PipelineAccountsFilteredPackets) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  net.add_host("a", Ipv4(10, 0, 0, 1));
  net.add_host("b", Ipv4(10, 0, 0, 2));
  net.add_external_host("e", Ipv4(198, 51, 100, 1));

  PipelineConfig cfg;
  cfg.sensor_count = 1;
  cfg.rules = standard_rule_set();
  cfg.tap_filter.exclude_dst_ports = {netsim::ports::kClusterRpc};
  Pipeline pipeline(sim, net, cfg);
  pipeline.attach();

  net.send(packet_to(Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 1),
                     netsim::ports::kClusterRpc));
  net.send(packet_to(Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 1), 80));
  sim.run_until();

  const PipelineTotals totals = pipeline.totals();
  EXPECT_EQ(totals.packets_tapped, 1u);
  EXPECT_EQ(totals.packets_filtered, 1u);
  EXPECT_EQ(totals.sensor_offered, 1u);
}

TEST(TapFilterTest, FilteredPoolIsBlindSpot) {
  // An attack inside the excluded pool sails past the IDS: the price of
  // data-pool selection, measurable as FN.
  netsim::Simulator sim;
  netsim::Network net(sim);
  net.add_host("victim", Ipv4(10, 0, 0, 2));
  net.add_external_host("attacker", Ipv4(198, 51, 100, 1));

  PipelineConfig cfg;
  cfg.sensor_count = 1;
  cfg.rules = standard_rule_set();
  cfg.tap_filter.exclude_dst_ports = {netsim::ports::kHttp};
  Pipeline pipeline(sim, net, cfg);
  pipeline.attach();
  pipeline.set_learning(false);

  FiveTuple t;
  t.src_ip = Ipv4(198, 51, 100, 1);
  t.dst_ip = Ipv4(10, 0, 0, 2);
  t.src_port = 4000;
  t.dst_port = netsim::ports::kHttp;
  net.send(netsim::make_packet(
      1, 1, sim.now(), t, "GET /../../etc/passwd HTTP/1.0\r\n\r\n"));
  sim.run_until();
  EXPECT_TRUE(pipeline.monitor().log().empty());
}

}  // namespace
}  // namespace idseval::ids
