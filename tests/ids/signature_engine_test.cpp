#include "ids/signature_engine.hpp"

#include <gtest/gtest.h>

#include "attack/patterns.hpp"
#include "util/strfmt.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::Protocol;
using netsim::SimTime;
using netsim::TcpFlags;

Packet packet_with(std::uint64_t flow, std::uint16_t dst_port,
                   std::string payload, TcpFlags flags = {},
                   Protocol proto = Protocol::kTcp,
                   Ipv4 src = Ipv4(198, 51, 100, 1),
                   std::uint16_t src_port = 4000) {
  FiveTuple t;
  t.src_ip = src;
  t.dst_ip = Ipv4(10, 0, 0, 2);
  t.src_port = src_port;
  t.dst_port = dst_port;
  t.proto = proto;
  return netsim::make_packet(flow, flow, SimTime::zero(),
                             t, std::move(payload), flags);
}

TEST(SensitivityMappingTest, ConfidenceBoundsAndMonotonicity) {
  EXPECT_NEAR(sensitivity_to_min_confidence(0.0), 0.95, 1e-9);
  EXPECT_NEAR(sensitivity_to_min_confidence(1.0), 0.25, 1e-9);
  EXPECT_GT(sensitivity_to_min_confidence(0.2),
            sensitivity_to_min_confidence(0.8));
  // Clamped outside [0,1].
  EXPECT_EQ(sensitivity_to_min_confidence(-5.0),
            sensitivity_to_min_confidence(0.0));
}

TEST(SensitivityMappingTest, ThresholdScale) {
  EXPECT_NEAR(sensitivity_threshold_scale(0.0), 1.6, 1e-9);
  EXPECT_NEAR(sensitivity_threshold_scale(0.5), 1.0, 1e-9);
  EXPECT_NEAR(sensitivity_threshold_scale(1.0), 0.4, 1e-9);
}

class SignatureEngineTest : public ::testing::Test {
 protected:
  SignatureEngine make(double sensitivity = 0.5,
                       bool deep_inspection = true) {
    return SignatureEngine(standard_rule_set(),
                           SignatureEngineOptions{sensitivity,
                                                  deep_inspection});
  }

  std::vector<Detection> process(SignatureEngine& engine, const Packet& p,
                                 SimTime now = SimTime::from_ms(1)) {
    std::vector<Detection> out;
    engine.process(p, now, out);
    return out;
  }
};

TEST_F(SignatureEngineTest, DetectsDirTraversalOnHttp) {
  auto engine = make();
  const Packet p = packet_with(
      1, netsim::ports::kHttp,
      util::cat("GET ", attack::patterns::kDirTraversal, " HTTP/1.0\r\n"));
  const auto detections = process(engine, p);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].rule, "WEB-IIS dir traversal");
  EXPECT_EQ(detections[0].method, DetectionMethod::kSignature);
  EXPECT_EQ(detections[0].flow_id, 1u);
}

TEST_F(SignatureEngineTest, PortConstraintEnforced) {
  auto engine = make();
  // Same payload on SMTP port: HTTP-only rule must not fire; the weak
  // "/etc/passwd" POLICY rule (any port) fires instead at s=0.5.
  const Packet p = packet_with(
      1, netsim::ports::kSmtp,
      util::cat("GET ", attack::patterns::kDirTraversal, " HTTP/1.0\r\n"));
  const auto detections = process(engine, p);
  for (const auto& d : detections) {
    EXPECT_NE(d.rule, "WEB-IIS dir traversal");
  }
}

TEST_F(SignatureEngineTest, DuplicateAlertSuppressionPerFlow) {
  auto engine = make();
  const Packet p = packet_with(
      1, netsim::ports::kHttp,
      util::cat("GET ", attack::patterns::kDirTraversal, " HTTP/1.0\r\n"));
  EXPECT_EQ(process(engine, p).size(), 1u);
  EXPECT_TRUE(process(engine, p).empty());  // same flow: suppressed
  Packet other = packet_with(
      2, netsim::ports::kHttp,
      util::cat("GET ", attack::patterns::kDirTraversal, " HTTP/1.0\r\n"));
  EXPECT_EQ(process(engine, other).size(), 1u);  // new flow: fires
}

TEST_F(SignatureEngineTest, LowSensitivitySuppressesWeakRules) {
  auto strict = make(0.0);
  // "POLICY passwd file access" has confidence 0.45 < 0.95 floor.
  const Packet p =
      packet_with(1, netsim::ports::kTelnet, "cat /etc/passwd | wc -l");
  EXPECT_TRUE(process(strict, p).empty());

  auto lax = make(1.0);
  EXPECT_FALSE(process(lax, p).empty());
}

TEST_F(SignatureEngineTest, DeepInspectionOffSkipsPatterns) {
  auto engine = make(1.0, /*deep_inspection=*/false);
  const Packet p = packet_with(
      1, netsim::ports::kHttp,
      util::cat("GET ", attack::patterns::kDirTraversal, " HTTP/1.0\r\n"));
  EXPECT_TRUE(process(engine, p).empty());
}

TEST_F(SignatureEngineTest, ScanCostGrowsWithPayload) {
  auto engine = make();
  const Packet small = packet_with(1, 80, std::string(100, 'x'));
  const Packet large = packet_with(2, 80, std::string(1000, 'x'));
  EXPECT_GT(engine.scan_cost_ops(large), engine.scan_cost_ops(small));
  auto headers_only = make(0.5, false);
  EXPECT_EQ(headers_only.scan_cost_ops(small),
            headers_only.scan_cost_ops(large));
}

TEST_F(SignatureEngineTest, PortScanThresholdRule) {
  auto engine = make(0.5);
  std::vector<Detection> all;
  TcpFlags syn;
  syn.syn = true;
  for (int i = 0; i < 60; ++i) {
    Packet p = packet_with(100, static_cast<std::uint16_t>(100 + i), "",
                           syn);
    engine.process(p, SimTime::from_ms(i * 2), all);
  }
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].rule, "SCAN port sweep");
  // Cooldown: exactly one alert for the sweep, not sixty.
  EXPECT_EQ(all.size(), 1u);
}

TEST_F(SignatureEngineTest, PortScanBelowThresholdSilent) {
  auto engine = make(0.5);
  std::vector<Detection> all;
  TcpFlags syn;
  syn.syn = true;
  for (int i = 0; i < 20; ++i) {  // threshold is 40 at scale 1.0
    Packet p = packet_with(100, static_cast<std::uint16_t>(100 + i), "",
                           syn);
    engine.process(p, SimTime::from_ms(i * 2), all);
  }
  EXPECT_TRUE(all.empty());
}

TEST_F(SignatureEngineTest, SensitivityLowersThreshold) {
  auto lax = make(1.0);  // threshold x0.4 => 16 ports suffice
  std::vector<Detection> all;
  TcpFlags syn;
  syn.syn = true;
  for (int i = 0; i < 20; ++i) {
    Packet p = packet_with(100, static_cast<std::uint16_t>(100 + i), "",
                           syn);
    lax.process(p, SimTime::from_ms(i * 2), all);
  }
  EXPECT_FALSE(all.empty());
}

TEST_F(SignatureEngineTest, SynFloodRule) {
  auto engine = make(0.5);
  std::vector<Detection> all;
  TcpFlags syn;
  syn.syn = true;
  for (int i = 0; i < 300; ++i) {
    Packet p = packet_with(
        200, netsim::ports::kHttp, "", syn, Protocol::kTcp,
        Ipv4(198, 51, 100, 1), static_cast<std::uint16_t>(1024 + i));
    engine.process(p, SimTime::from_us(i * 500), all);
  }
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].rule, "DOS syn flood");
}

TEST_F(SignatureEngineTest, SynWithAckNotCountedAsFlood) {
  auto engine = make(1.0);
  std::vector<Detection> all;
  TcpFlags synack;
  synack.syn = true;
  synack.ack = true;
  for (int i = 0; i < 300; ++i) {
    Packet p = packet_with(200, netsim::ports::kHttp, "", synack);
    engine.process(p, SimTime::from_us(i * 500), all);
  }
  for (const auto& d : all) EXPECT_NE(d.rule, "DOS syn flood");
}

TEST_F(SignatureEngineTest, BruteForceFlowRateRuleRespectsPort) {
  auto engine = make(0.5);
  std::vector<Detection> all;
  // 40 packets in one flow on telnet -> fires; same on HTTP -> silent.
  for (int i = 0; i < 40; ++i) {
    Packet telnet = packet_with(300, netsim::ports::kTelnet, "x");
    engine.process(telnet, SimTime::from_ms(i * 100), all);
  }
  bool brute = false;
  for (const auto& d : all) {
    if (d.rule == "TELNET brute force") brute = true;
  }
  EXPECT_TRUE(brute);

  auto engine2 = make(0.5);
  std::vector<Detection> http_out;
  for (int i = 0; i < 40; ++i) {
    Packet http = packet_with(301, netsim::ports::kHttp, "x");
    engine2.process(http, SimTime::from_ms(i * 100), http_out);
  }
  for (const auto& d : http_out) EXPECT_NE(d.rule, "TELNET brute force");
}

TEST_F(SignatureEngineTest, WindowExpiryForgetsOldEvents) {
  auto engine = make(0.5);
  std::vector<Detection> all;
  TcpFlags syn;
  syn.syn = true;
  // 60 ports but spread over 60 seconds — outside the 5 s window.
  for (int i = 0; i < 60; ++i) {
    Packet p = packet_with(400, static_cast<std::uint16_t>(100 + i), "",
                           syn);
    engine.process(p, SimTime::from_sec(i), all);
  }
  EXPECT_TRUE(all.empty());
}

TEST_F(SignatureEngineTest, ResetStateClearsWindowsAndDedup) {
  auto engine = make(0.5);
  const Packet p = packet_with(
      1, netsim::ports::kHttp,
      util::cat("GET ", attack::patterns::kDirTraversal, " HTTP/1.0\r\n"));
  EXPECT_EQ(process(engine, p).size(), 1u);
  engine.reset_state();
  EXPECT_EQ(process(engine, p).size(), 1u);  // fires again after reset
}

TEST_F(SignatureEngineTest, StandardRuleSetSanity) {
  const RuleSet rules = standard_rule_set();
  EXPECT_GE(rules.patterns.size(), 9u);
  EXPECT_GE(rules.thresholds.size(), 3u);
  for (const auto& r : rules.patterns) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_FALSE(r.pattern.empty());
    EXPECT_GE(r.severity, 1);
    EXPECT_LE(r.severity, 5);
    EXPECT_GT(r.confidence, 0.0);
    EXPECT_LE(r.confidence, 1.0);
  }
  // The novel-exploit marker must not be in the shipped database.
  for (const auto& r : rules.patterns) {
    EXPECT_EQ(r.pattern.find(attack::patterns::kNovelMarker),
              std::string::npos);
  }
}

}  // namespace
}  // namespace idseval::ids
