#include <gtest/gtest.h>

#include "ids/analyzer.hpp"
#include "ids/monitor.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::SimTime;

Detection detection(std::uint64_t flow, const std::string& rule,
                    int severity = 3,
                    Ipv4 src = Ipv4(198, 51, 100, 1)) {
  Detection d;
  d.flow_id = flow;
  d.tuple.src_ip = src;
  d.tuple.dst_ip = Ipv4(10, 0, 0, 2);
  d.rule = rule;
  d.confidence = 0.9;
  d.severity = severity;
  return d;
}

TEST(AnalyzerTest, EmitsReportPerFlow) {
  netsim::Simulator sim;
  Analyzer analyzer(sim, AnalyzerConfig{});
  std::vector<ThreatReport> reports;
  analyzer.set_on_report([&](const ThreatReport& r) {
    reports.push_back(r);
  });
  analyzer.submit(detection(1, "rule-a"));
  analyzer.submit(detection(2, "rule-b"));
  sim.run_until();
  EXPECT_EQ(reports.size(), 2u);
  EXPECT_EQ(analyzer.stats().reports_out, 2u);
}

TEST(AnalyzerTest, MergesSameFlowWithinWindow) {
  netsim::Simulator sim;
  AnalyzerConfig cfg;
  cfg.correlation_window = SimTime::from_sec(10);
  Analyzer analyzer(sim, cfg);
  std::vector<ThreatReport> reports;
  analyzer.set_on_report([&](const ThreatReport& r) {
    reports.push_back(r);
  });
  analyzer.submit(detection(1, "rule-a"));
  analyzer.submit(detection(1, "rule-b"));
  analyzer.submit(detection(1, "rule-c"));
  sim.run_until();
  EXPECT_EQ(reports.size(), 1u);
  EXPECT_EQ(analyzer.stats().merged, 2u);
}

TEST(AnalyzerTest, SameFlowAfterWindowReportsAgain) {
  netsim::Simulator sim;
  AnalyzerConfig cfg;
  cfg.correlation_window = SimTime::from_sec(1);
  Analyzer analyzer(sim, cfg);
  int reports = 0;
  analyzer.set_on_report([&](const ThreatReport&) { ++reports; });
  analyzer.submit(detection(1, "rule-a"));
  sim.run_until();
  sim.schedule_at(SimTime::from_sec(5),
                  [&] { analyzer.submit(detection(1, "rule-a")); });
  sim.run_until();
  EXPECT_EQ(reports, 2);
}

TEST(AnalyzerTest, OffenderEscalation) {
  netsim::Simulator sim;
  AnalyzerConfig cfg;
  cfg.escalation_rule_count = 3;
  Analyzer analyzer(sim, cfg);
  std::vector<ThreatReport> reports;
  analyzer.set_on_report([&](const ThreatReport& r) {
    reports.push_back(r);
  });
  // Three distinct rules from one source in the window: escalate.
  analyzer.submit(detection(1, "rule-a", 3));
  analyzer.submit(detection(2, "rule-b", 3));
  analyzer.submit(detection(3, "rule-c", 3));
  sim.run_until();
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].severity, 3);
  EXPECT_EQ(reports[2].severity, 4);  // escalated
  EXPECT_GE(analyzer.stats().escalations, 1u);
}

TEST(AnalyzerTest, TransferDelayDelaysReports) {
  netsim::Simulator sim;
  AnalyzerConfig cfg;
  cfg.transfer_delay = SimTime::from_ms(50);
  Analyzer analyzer(sim, cfg);
  SimTime reported_at;
  analyzer.set_on_report([&](const ThreatReport& r) {
    reported_at = r.when;
  });
  analyzer.submit(detection(1, "rule-a"));
  sim.run_until();
  EXPECT_GE(reported_at, SimTime::from_ms(50));
}

TEST(AnalyzerTest, StorageGrowsPerDetection) {
  netsim::Simulator sim;
  AnalyzerConfig cfg;
  cfg.bytes_per_detection = 512;
  Analyzer analyzer(sim, cfg);
  analyzer.set_on_report([](const ThreatReport&) {});
  for (int i = 0; i < 10; ++i) {
    analyzer.submit(detection(static_cast<std::uint64_t>(i), "r"));
  }
  sim.run_until();
  EXPECT_EQ(analyzer.stats().bytes_stored, 5120u);
}

TEST(MonitorTest, RaisesAlertAfterNotificationDelay) {
  netsim::Simulator sim;
  MonitorConfig cfg;
  cfg.notification_delay = SimTime::from_ms(200);
  Monitor monitor(sim, cfg);
  ThreatReport report;
  report.primary = detection(1, "rule-a", 4);
  report.severity = 4;
  report.when = sim.now();
  monitor.submit(report);
  EXPECT_TRUE(monitor.log().empty());  // not yet raised
  sim.run_until();
  ASSERT_EQ(monitor.log().size(), 1u);
  EXPECT_EQ(monitor.log()[0].raised, SimTime::from_ms(200));
  EXPECT_EQ(monitor.stats().alerts_raised, 1u);
}

TEST(MonitorTest, SeverityFloorSuppresses) {
  netsim::Simulator sim;
  MonitorConfig cfg;
  cfg.min_severity = 3;
  Monitor monitor(sim, cfg);
  ThreatReport low;
  low.primary = detection(1, "noise", 1);
  low.severity = 2;
  monitor.submit(low);
  sim.run_until();
  EXPECT_TRUE(monitor.log().empty());
  EXPECT_EQ(monitor.stats().suppressed_severity, 1u);
}

TEST(MonitorTest, DuplicateFlowSuppressed) {
  netsim::Simulator sim;
  Monitor monitor(sim, MonitorConfig{});
  ThreatReport report;
  report.primary = detection(1, "rule-a", 4);
  report.severity = 4;
  monitor.submit(report);
  monitor.submit(report);
  sim.run_until();
  EXPECT_EQ(monitor.log().size(), 1u);
  EXPECT_EQ(monitor.stats().suppressed_duplicate, 1u);
  EXPECT_TRUE(monitor.alerted_flows().contains(1u));
}

TEST(MonitorTest, AlertCallbackFires) {
  netsim::Simulator sim;
  Monitor monitor(sim, MonitorConfig{});
  std::vector<Alert> alerts;
  monitor.set_on_alert([&](const Alert& a) { alerts.push_back(a); });
  ThreatReport report;
  report.primary = detection(5, "rule-x", 5);
  report.severity = 5;
  report.correlated_count = 3;
  monitor.submit(report);
  sim.run_until();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].flow_id, 5u);
  EXPECT_EQ(alerts[0].severity, 5);
  EXPECT_EQ(alerts[0].correlated_count, 3);
  EXPECT_GT(alerts[0].id, 0u);
}

TEST(MonitorTest, EscalatedSeverityReRaisesSameFlow) {
  // A later, more severe verdict on an already-alerted flow must reach
  // the operator (and the console's block policy); equal or lower
  // severity stays suppressed as a duplicate.
  netsim::Simulator sim;
  Monitor monitor(sim, MonitorConfig{});
  ThreatReport first;
  first.primary = detection(1, "weak-rule", 3);
  first.severity = 3;
  monitor.submit(first);
  sim.run_until();
  ASSERT_EQ(monitor.log().size(), 1u);

  ThreatReport equal = first;
  monitor.submit(equal);  // same severity: duplicate
  sim.run_until();
  EXPECT_EQ(monitor.log().size(), 1u);
  EXPECT_EQ(monitor.stats().suppressed_duplicate, 1u);

  ThreatReport escalated;
  escalated.primary = detection(1, "critical-rule", 5);
  escalated.severity = 5;
  monitor.submit(escalated);
  sim.run_until();
  ASSERT_EQ(monitor.log().size(), 2u);
  EXPECT_EQ(monitor.log()[1].severity, 5);
  // The flow set (Figure 3's D) still counts the flow once.
  EXPECT_EQ(monitor.alerted_flows().size(), 1u);
}

TEST(MonitorTest, ClearResetsEverything) {
  netsim::Simulator sim;
  Monitor monitor(sim, MonitorConfig{});
  ThreatReport report;
  report.primary = detection(1, "rule-a", 4);
  report.severity = 4;
  monitor.submit(report);
  sim.run_until();
  monitor.clear();
  EXPECT_TRUE(monitor.log().empty());
  EXPECT_TRUE(monitor.alerted_flows().empty());
  EXPECT_EQ(monitor.stats().alerts_raised, 0u);
}

TEST(DetectionMethodTest, Names) {
  EXPECT_EQ(to_string(DetectionMethod::kSignature), "signature");
  EXPECT_EQ(to_string(DetectionMethod::kAnomaly), "anomaly");
}

}  // namespace
}  // namespace idseval::ids
