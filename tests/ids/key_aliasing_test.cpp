// Regression tests for the two XOR key-aliasing bugs the packed keys
// close. Both tests construct pairs that collide under the OLD packing
// (asserted inline as arithmetic) and verify the engines now keep them
// distinct — these tests fail against the old keying and pass against
// the new.
//
//   1. Service triples: the old key folded dst_port << 16 into the low
//      half of dst_ip inside one 64-bit word, so services with
//      dst_b == dst_a ^ ((port_a ^ port_b) << 16) aliased and a novel
//      service on dst_b was silently treated as the learned one on dst_a.
//   2. fire_once dedup: the old key was (feature_tag << 48) ^ flow_id,
//      so (tagA, fA) == (tagB, fB) whenever fB == fA ^ ((tagA^tagB)<<48)
//      — one flow's alert swallowed a different feature on a different
//      flow.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ids/anomaly_engine.hpp"
#include "ids/fired_set.hpp"
#include "netsim/packet.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::Protocol;
using netsim::SimTime;

Packet packet_for(std::uint64_t flow, Ipv4 src, Ipv4 dst,
                  std::uint16_t dst_port, std::string payload,
                  double at_sec = 0.0) {
  static std::uint64_t next_id = 1;
  FiveTuple t;
  t.src_ip = src;
  t.dst_ip = dst;
  t.src_port = 40000;
  t.dst_port = dst_port;
  t.proto = Protocol::kTcp;
  return netsim::make_packet(next_id++, flow, SimTime::from_sec(at_sec), t,
                             std::move(payload));
}

std::vector<std::string> rules_fired(const std::vector<Detection>& out) {
  std::vector<std::string> rules;
  for (const Detection& d : out) rules.push_back(d.rule);
  return rules;
}

bool fired(const std::vector<Detection>& out, const std::string& rule,
           std::uint64_t flow) {
  for (const Detection& d : out) {
    if (d.rule == rule && d.flow_id == flow) return true;
  }
  return false;
}

TEST(KeyAliasingTest, DistinctServicesNoLongerAliasInPeerGraph) {
  const Ipv4 src(10, 0, 0, 5);
  const Ipv4 dst_a(10, 0, 2, 1);
  const std::uint16_t port_a = netsim::ports::kClusterRpc;  // 7400
  const std::uint16_t port_b = netsim::ports::kHttp;        // 80
  // Crafted second service that the OLD XOR-folded triple key cannot
  // tell apart from (dst_a, port_a):
  const Ipv4 dst_b(dst_a.value() ^
                   (static_cast<std::uint32_t>(port_a ^ port_b) << 16));
  ASSERT_EQ(dst_a.value() ^ (static_cast<std::uint32_t>(port_a) << 16),
            dst_b.value() ^ (static_cast<std::uint32_t>(port_b) << 16))
      << "test construction must collide under the old folding";
  ASSERT_NE(dst_a, dst_b);

  AnomalyEngineOptions opts;
  opts.sensitivity = 0.8;  // z_trigger 2.8 < new-service pseudo_z 3.0
  AnomalyEngine engine(opts);
  std::vector<Detection> out;

  // Learning: src talks to dst_a on port_a, and to dst_b on an unrelated
  // port — so both PEERS are known and only service novelty remains to
  // distinguish the detection-phase packet.
  engine.set_mode(AnomalyEngine::Mode::kLearning);
  engine.process(packet_for(1, src, dst_a, port_a, ""),
                 SimTime::from_sec(0.1), out);
  engine.process(packet_for(2, src, dst_b, 9999, ""),
                 SimTime::from_sec(0.2), out);
  ASSERT_TRUE(out.empty());

  // Detection: (src, dst_b, port_b) is a novel service. Under the old
  // aliased key it matched the learned (src, dst_a, port_a) triple and
  // was silently accepted.
  engine.set_mode(AnomalyEngine::Mode::kDetecting);
  engine.process(packet_for(3, src, dst_b, port_b, ""),
                 SimTime::from_sec(1.0), out);
  EXPECT_TRUE(fired(out, "novel internal service", 3))
      << ::testing::PrintToString(rules_fired(out));

  // Sanity: the genuinely learned service stays quiet.
  out.clear();
  engine.process(packet_for(4, src, dst_a, port_a, ""),
                 SimTime::from_sec(1.1), out);
  EXPECT_FALSE(fired(out, "novel internal service", 4));
  EXPECT_FALSE(fired(out, "novel internal peer", 4));
}

TEST(KeyAliasingTest, FireOnceKeysNeverCollideAcrossFeaturesAndFlows) {
  // Exact-pair dedup keys at the FiredSet level.
  FiredSet set;
  const std::uint64_t flow = 12345;
  EXPECT_TRUE(set.insert(FireKey{flow, 1}));
  EXPECT_TRUE(set.insert(FireKey{flow, 2}));   // second feature, same flow
  EXPECT_TRUE(set.insert(FireKey{flow + 1, 1}));  // same feature, new flow
  EXPECT_FALSE(set.insert(FireKey{flow, 1}));  // true duplicate
  EXPECT_EQ(set.size(), 3u);

  // The crafted old-scheme collision: tags 1 and 2 on flows related by
  // fB == fA ^ (3 << 48).
  const std::uint64_t fa = 0x0123456789abULL;
  const std::uint64_t fb = fa ^ (3ULL << 48);
  ASSERT_EQ((1ULL << 48) ^ fa, (2ULL << 48) ^ fb)
      << "test construction must collide under the old packing";
  EXPECT_TRUE(set.insert(FireKey{fa, 1}));
  EXPECT_TRUE(set.insert(FireKey{fb, 2}));  // swallowed under the old key
}

TEST(KeyAliasingTest, EngineRaisesBothAliasedDetections) {
  // End-to-end: train a per-service payload model, then trigger feature
  // tag 1 (length) on flow fa and feature tag 2 (entropy) on
  // fb = fa ^ (3 << 48). The old fire_once key treated the second as a
  // duplicate of the first.
  const std::uint64_t fa = 0x0123456789abULL;
  const std::uint64_t fb = fa ^ (3ULL << 48);
  ASSERT_EQ((1ULL << 48) ^ fa, (2ULL << 48) ^ fb);

  AnomalyEngineOptions opts;
  opts.sensitivity = 0.8;
  opts.learn_peer_graph = false;  // isolate the payload-shape features
  AnomalyEngine engine(opts);
  std::vector<Detection> out;

  const Ipv4 src(10, 0, 0, 5);
  const Ipv4 dst(10, 0, 0, 9);
  // 35 identical low-entropy payloads: tight length + entropy baseline.
  engine.set_mode(AnomalyEngine::Mode::kLearning);
  for (int i = 0; i < 35; ++i) {
    engine.process(packet_for(100 + i, src, dst, 80, std::string(100, 'a'),
                              0.01 * i),
                   SimTime::from_sec(0.01 * i), out);
  }
  ASSERT_TRUE(out.empty());

  engine.set_mode(AnomalyEngine::Mode::kDetecting);
  // fa: 4x the learned length, same zero entropy -> length anomaly only.
  engine.process(packet_for(fa, src, dst, 80, std::string(400, 'a')),
                 SimTime::from_sec(2.0), out);
  // fb: learned length, maximal byte diversity -> entropy anomaly only.
  std::string diverse(100, '\0');
  for (int i = 0; i < 100; ++i) diverse[i] = static_cast<char>(i + 1);
  engine.process(packet_for(fb, src, dst, 80, diverse),
                 SimTime::from_sec(2.1), out);

  EXPECT_TRUE(fired(out, "anomalous payload length", fa))
      << ::testing::PrintToString(rules_fired(out));
  EXPECT_TRUE(fired(out, "anomalous payload entropy", fb))
      << ::testing::PrintToString(rules_fired(out));
}

}  // namespace
}  // namespace idseval::ids
