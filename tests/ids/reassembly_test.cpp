// Stream-reassembly vs packet-boundary evasion (Ptacek-Newsham): a
// pattern split across two payloads must be invisible to a per-packet
// matcher and visible to a reassembling one — at measurable extra cost.
#include <gtest/gtest.h>

#include "attack/emitter.hpp"
#include "attack/patterns.hpp"
#include "ids/pipeline.hpp"
#include "ids/signature_engine.hpp"
#include "products/catalog.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::SimTime;

Packet http_packet(std::uint64_t flow, std::uint32_t seq,
                   std::string payload) {
  FiveTuple t;
  t.src_ip = Ipv4(198, 51, 100, 1);
  t.dst_ip = Ipv4(10, 0, 0, 2);
  t.src_port = 4000;
  t.dst_port = netsim::ports::kHttp;
  Packet p = netsim::make_packet(flow * 100 + seq, flow, SimTime::zero(),
                                 t, std::move(payload));
  p.seq = seq;
  return p;
}

SignatureEngine engine_with(bool reassembly) {
  SignatureEngineOptions opt;
  opt.sensitivity = 0.5;
  opt.stream_reassembly = reassembly;
  return SignatureEngine(standard_rule_set(), opt);
}

TEST(ReassemblyTest, SplitPatternInvisibleWithoutReassembly) {
  auto engine = engine_with(false);
  const std::string exploit = "GET /../../etc/passwd HTTP/1.0\r\n";
  std::vector<Detection> out;
  // Cut inside the traversal pattern.
  engine.process(http_packet(1, 1, exploit.substr(0, 12)),
                 SimTime::from_ms(1), out);
  engine.process(http_packet(1, 2, exploit.substr(12)),
                 SimTime::from_ms(2), out);
  for (const auto& d : out) {
    EXPECT_EQ(d.rule.find("WEB-IIS"), std::string::npos) << d.rule;
  }
}

TEST(ReassemblyTest, SplitPatternCaughtWithReassembly) {
  auto engine = engine_with(true);
  const std::string exploit = "GET /../../etc/passwd HTTP/1.0\r\n";
  std::vector<Detection> out;
  engine.process(http_packet(1, 1, exploit.substr(0, 12)),
                 SimTime::from_ms(1), out);
  engine.process(http_packet(1, 2, exploit.substr(12)),
                 SimTime::from_ms(2), out);
  bool caught = false;
  for (const auto& d : out) {
    if (d.rule == "WEB-IIS dir traversal") caught = true;
  }
  EXPECT_TRUE(caught);
}

TEST(ReassemblyTest, UnsplitPatternCaughtEitherWay) {
  for (const bool reassembly : {false, true}) {
    auto engine = engine_with(reassembly);
    std::vector<Detection> out;
    engine.process(
        http_packet(1, 1, "GET /../../etc/passwd HTTP/1.0\r\n"),
        SimTime::from_ms(1), out);
    EXPECT_FALSE(out.empty()) << "reassembly=" << reassembly;
  }
}

TEST(ReassemblyTest, FlowsDoNotCrossContaminate) {
  // Tail of flow A must never complete a pattern begun in flow B.
  auto engine = engine_with(true);
  std::vector<Detection> out;
  engine.process(http_packet(1, 1, "GET /../../e"), SimTime::from_ms(1),
                 out);
  engine.process(http_packet(2, 1, "tc/passwd HTTP/1.0\r\n"),
                 SimTime::from_ms(2), out);
  for (const auto& d : out) {
    EXPECT_EQ(d.rule.find("WEB-IIS"), std::string::npos);
  }
}

TEST(ReassemblyTest, CostsMoreOpsAndTracksMemory) {
  auto plain = engine_with(false);
  auto reassembling = engine_with(true);
  const Packet p = http_packet(1, 1, std::string(400, 'x'));
  EXPECT_GT(reassembling.scan_cost_ops(p), plain.scan_cost_ops(p));

  std::vector<Detection> sink;
  EXPECT_EQ(reassembling.reassembly_bytes(), 0u);
  reassembling.process(p, SimTime::from_ms(1), sink);
  EXPECT_GT(reassembling.reassembly_bytes(), 0u);
  reassembling.reset_state();
  EXPECT_EQ(reassembling.reassembly_bytes(), 0u);
}

TEST(ReassemblyTest, EvasiveEmitterSplitsEveryPattern) {
  // No single packet of the evasive exploit contains a published pattern,
  // but the concatenated stream does.
  netsim::Simulator sim;
  netsim::Network net(sim);
  net.add_host("victim", Ipv4(10, 0, 0, 2));
  net.add_external_host("attacker", Ipv4(198, 51, 100, 1));
  traffic::TransactionLedger ledger;
  attack::AttackEmitter emitter(sim, net, ledger, 7);
  std::vector<Packet> seen;
  net.lan_switch().add_mirror([&](const Packet& p) { seen.push_back(p); });
  emitter.launch(attack::AttackKind::kEvasiveExploit,
                 Ipv4(198, 51, 100, 1), Ipv4(10, 0, 0, 2),
                 SimTime::from_ms(1));
  sim.run_until();
  ASSERT_GE(seen.size(), 3u);

  std::string stream;
  for (const auto& p : seen) {
    for (const auto pattern : attack::patterns::kPublished) {
      EXPECT_EQ(p.payload_view().find(pattern), std::string::npos)
          << "pattern visible in a single packet";
    }
    stream += p.payload_view();
  }
  EXPECT_NE(stream.find(attack::patterns::kDirTraversal),
            std::string::npos);
  EXPECT_NE(stream.find(attack::patterns::kNopSled), std::string::npos);
}

TEST(ReassemblyTest, ProductDifferentiationEndToEnd) {
  // SentryNID (reassembling) flags the evasive exploit; GuardSecure's
  // per-packet network sensors do not.
  const std::pair<products::ProductId, bool> cases[] = {
      {products::ProductId::kSentryNid, true},
      {products::ProductId::kGuardSecure, false},
  };
  for (const auto& [id, expect_caught] : cases) {
    netsim::Simulator sim;
    netsim::Network net(sim);
    net.add_host("victim", Ipv4(10, 0, 0, 2));
    net.add_external_host("attacker", Ipv4(198, 51, 100, 1));
    traffic::TransactionLedger ledger;
    attack::AttackEmitter emitter(sim, net, ledger, 7);

    ids::PipelineConfig cfg = products::product(id).make_config(0.5);
    cfg.use_host_agents = false;  // isolate the network-sensor path
    ids::Pipeline pipeline(sim, net, cfg);
    pipeline.attach();
    pipeline.set_learning(false);

    const std::uint64_t flow = emitter.launch(
        attack::AttackKind::kEvasiveExploit, Ipv4(198, 51, 100, 1),
        Ipv4(10, 0, 0, 2), SimTime::from_ms(1));
    sim.run_until();
    EXPECT_EQ(pipeline.monitor().alerted_flows().contains(flow),
              expect_caught)
        << products::to_string(id);
  }
}

}  // namespace
}  // namespace idseval::ids
