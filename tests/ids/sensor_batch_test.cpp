// Batch-boundary tests for vectorized sensor ingest: ingest_batch must
// land on exactly the stats the per-packet path produces — including a
// failure tripped mid-batch dropping the remainder — with host op
// charges accumulated to one call per batch.
#include "ids/sensor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "attack/patterns.hpp"
#include "ids/rules.hpp"
#include "netsim/host.hpp"
#include "util/strfmt.hpp"

namespace idseval::ids {
namespace {

using netsim::FiveTuple;
using netsim::Ipv4;
using netsim::Packet;
using netsim::SimTime;

Packet plain_packet(netsim::Simulator& sim, std::string payload = "data") {
  FiveTuple t;
  t.src_ip = Ipv4(198, 51, 100, 1);
  t.dst_ip = Ipv4(10, 0, 0, 2);
  t.dst_port = netsim::ports::kHttp;
  return netsim::make_packet(sim.next_packet_id(), sim.next_flow_id(),
                             sim.now(), t, std::move(payload));
}

SensorConfig fast_config() {
  SensorConfig cfg;
  cfg.name = "s";
  cfg.base_ops_per_packet = 1000.0;
  cfg.ops_per_sec = 1e9;
  cfg.queue_capacity = 64;
  return cfg;
}

void expect_same_stats(const SensorStats& a, const SensorStats& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.processed, b.processed);
  EXPECT_EQ(a.dropped_queue, b.dropped_queue);
  EXPECT_EQ(a.dropped_failed, b.dropped_failed);
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(SensorBatchTest, BatchIngestMatchesPerPacketStats) {
  netsim::Simulator sim_a;
  netsim::Simulator sim_b;
  Sensor batch_sensor(sim_a, fast_config());
  Sensor ref_sensor(sim_b, fast_config());
  std::vector<Packet> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(plain_packet(sim_a));
  batch_sensor.ingest_batch(batch.data(), batch.size());
  for (const Packet& p : batch) ref_sensor.ingest(p);
  sim_a.run_until();
  sim_b.run_until();
  expect_same_stats(batch_sensor.stats(), ref_sensor.stats());
}

TEST(SensorBatchTest, QueueOverflowWithinBatchMatchesPerPacket) {
  netsim::Simulator sim_a;
  netsim::Simulator sim_b;
  SensorConfig cfg = fast_config();
  cfg.queue_capacity = 8;
  cfg.base_ops_per_packet = 1e7;  // 10 ms each: queue saturates instantly
  Sensor batch_sensor(sim_a, cfg);
  Sensor ref_sensor(sim_b, cfg);
  std::vector<Packet> batch;
  for (int i = 0; i < 20; ++i) batch.push_back(plain_packet(sim_a));
  batch_sensor.ingest_batch(batch.data(), batch.size());
  for (const Packet& p : batch) ref_sensor.ingest(p);
  EXPECT_EQ(batch_sensor.stats().dropped_queue, 12u);
  sim_a.run_until();
  sim_b.run_until();
  expect_same_stats(batch_sensor.stats(), ref_sensor.stats());
}

TEST(SensorBatchTest, FailureMidBatchDropsRemainderLikePerPacket) {
  netsim::Simulator sim_a;
  netsim::Simulator sim_b;
  SensorConfig cfg = fast_config();
  cfg.queue_capacity = 4;
  cfg.base_ops_per_packet = 1e8;  // 100 ms each
  cfg.overload_tolerance = SimTime::from_ms(200);
  cfg.recovery = RecoveryPolicy::kHang;
  Sensor batch_sensor(sim_a, cfg);
  Sensor ref_sensor(sim_b, cfg);
  std::vector<Packet> batch;
  for (int i = 0; i < 50; ++i) batch.push_back(plain_packet(sim_a));
  batch_sensor.ingest_batch(batch.data(), batch.size());
  for (const Packet& p : batch) ref_sensor.ingest(p);
  // The backlog trips the failure partway through; everything after the
  // trip must be accounted as dropped_failed on both paths.
  EXPECT_TRUE(batch_sensor.failed());
  EXPECT_TRUE(ref_sensor.failed());
  EXPECT_EQ(batch_sensor.stats().failures, 1u);
  EXPECT_GT(batch_sensor.stats().dropped_failed, 0u);
  sim_a.run_until(SimTime::from_sec(60));
  sim_b.run_until(SimTime::from_sec(60));
  expect_same_stats(batch_sensor.stats(), ref_sensor.stats());
}

TEST(SensorBatchTest, DetectionsFlowThroughBatchSink) {
  netsim::Simulator sim;
  Sensor sensor(sim, fast_config());
  sensor.set_signature_engine(std::make_unique<SignatureEngine>(
      standard_rule_set(), SignatureEngineOptions{0.5, true}));
  std::vector<Detection> got;
  sensor.set_on_detections([&](const Detection* d, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) got.push_back(d[i]);
  });
  std::vector<Packet> batch;
  batch.push_back(plain_packet(sim));
  batch.push_back(plain_packet(
      sim, util::cat("GET ", attack::patterns::kDirTraversal,
                     " HTTP/1.0\r\n")));
  batch.push_back(plain_packet(sim));
  sensor.ingest_batch(batch.data(), batch.size());
  sim.run_until();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].rule, "WEB-IIS dir traversal");
  EXPECT_EQ(sensor.stats().detections, 1u);
}

TEST(SensorBatchTest, HostChargedOncePerBatchWithSameTotal) {
  netsim::Simulator sim_a;
  netsim::Simulator sim_b;
  netsim::Host host_a("h", Ipv4(10, 0, 0, 1), 1e9);
  netsim::Host host_b("h", Ipv4(10, 0, 0, 1), 1e9);
  SensorConfig cfg = fast_config();
  cfg.base_ops_per_packet = 5e6;
  Sensor batch_sensor(sim_a, cfg);
  Sensor ref_sensor(sim_b, cfg);
  batch_sensor.bind_host(&host_a);
  ref_sensor.bind_host(&host_b);
  host_a.begin_accounting(sim_a.now());
  host_b.begin_accounting(sim_b.now());
  std::vector<Packet> batch;
  for (int i = 0; i < 16; ++i) batch.push_back(plain_packet(sim_a));
  batch_sensor.ingest_batch(batch.data(), batch.size());
  for (const Packet& p : batch) ref_sensor.ingest(p);
  sim_a.run_until();
  sim_b.run_until();
  host_a.end_accounting(sim_a.now());
  host_b.end_accounting(sim_b.now());
  // Fixed per-packet cost: the accumulated batch charge is exactly the
  // sum of the per-packet charges.
  EXPECT_DOUBLE_EQ(host_a.ids_cpu_fraction(), host_b.ids_cpu_fraction());
  EXPECT_GT(host_a.ids_cpu_fraction(), 0.0);
}

TEST(SensorBatchTest, SingletonBatchTakesLegacyIngestPath) {
  netsim::Simulator sim;
  Sensor sensor(sim, fast_config());
  const Packet p = plain_packet(sim);
  sensor.ingest_batch(&p, 1);
  sim.run_until();
  EXPECT_EQ(sensor.stats().offered, 1u);
  EXPECT_EQ(sensor.stats().processed, 1u);
}

}  // namespace
}  // namespace idseval::ids
