#include "products/catalog.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ids/pipeline.hpp"
#include "products/scoring.hpp"

namespace idseval::products {
namespace {

TEST(ProductCatalogTest, FourProductsOrdered) {
  const auto& catalog = product_catalog();
  EXPECT_EQ(catalog.size(), kProductCount);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(catalog[i].id), i);
    EXPECT_FALSE(catalog[i].name.empty());
    EXPECT_FALSE(catalog[i].description.empty());
    EXPECT_EQ(catalog[i].facts.product, catalog[i].name);
  }
}

TEST(ProductCatalogTest, CommercialSubsetExcludesResearchSystem) {
  const auto commercial = commercial_products();
  EXPECT_EQ(commercial.size(), 3u);
  for (const auto id : commercial) {
    EXPECT_NE(id, ProductId::kAgentSwarm);
  }
}

TEST(ProductCatalogTest, EveryConfigPassesCardinalityValidation) {
  for (const ProductModel& model : product_catalog()) {
    for (const double s : {0.0, 0.5, 1.0}) {
      const ids::PipelineConfig cfg = model.make_config(s);
      EXPECT_TRUE(ids::Pipeline::validate(cfg).empty())
          << model.name << " at sensitivity " << s;
      EXPECT_DOUBLE_EQ(cfg.sensitivity, s);
    }
  }
}

TEST(ProductCatalogTest, ArchitecturesAreDistinct) {
  const auto& sentry = product(ProductId::kSentryNid);
  const auto& guard = product(ProductId::kGuardSecure);
  const auto& flowhunt = product(ProductId::kFlowHunt);
  const auto& swarm = product(ProductId::kAgentSwarm);

  // SentryNID: centralized single network sensor, signature only.
  const auto sc = sentry.make_config(0.5);
  EXPECT_EQ(sc.sensor_count, 1u);
  EXPECT_FALSE(sc.use_load_balancer);
  EXPECT_TRUE(sc.signature_engine);
  EXPECT_FALSE(sc.anomaly_engine);
  EXPECT_FALSE(sentry.deploys_host_agents);

  // GuardSecure: hybrid host+network, signature.
  const auto gc = guard.make_config(0.5);
  EXPECT_GE(gc.sensor_count, 2u);
  EXPECT_TRUE(gc.use_host_agents);
  EXPECT_TRUE(guard.deploys_host_agents);
  EXPECT_TRUE(gc.console.can_block_firewall);

  // FlowHunt: anomaly engine behind a dynamic in-line LB.
  const auto fc = flowhunt.make_config(0.5);
  EXPECT_TRUE(fc.use_load_balancer);
  EXPECT_EQ(fc.lb.strategy, ids::LbStrategy::kLeastLoaded);
  EXPECT_TRUE(fc.lb.in_line);
  EXPECT_TRUE(fc.anomaly_engine);
  EXPECT_FALSE(fc.signature_engine);
  EXPECT_TRUE(fc.console.can_redirect_router);

  // AgentSwarm: purely host-based research prototype, no console.
  const auto ac = swarm.make_config(0.5);
  EXPECT_EQ(ac.sensor_count, 0u);
  EXPECT_TRUE(ac.use_host_agents);
  EXPECT_FALSE(ac.use_console);
  EXPECT_TRUE(ac.signature_engine);
  EXPECT_TRUE(ac.anomaly_engine);
  EXPECT_EQ(ac.agent.logging, ids::LoggingLevel::kC2Audit);
  EXPECT_TRUE(ac.agent.report_over_network);
}

TEST(ProductCatalogTest, RecoveryPoliciesSpanAnchors) {
  // The three commercial products plus the prototype must cover the
  // Error Reporting and Recovery anchor spectrum.
  std::set<ids::RecoveryPolicy> policies;
  for (const ProductModel& model : product_catalog()) {
    const auto cfg = model.make_config(0.5);
    policies.insert(model.deploys_host_agents && cfg.sensor_count == 0
                        ? cfg.agent_sensor.recovery
                        : cfg.sensor.recovery);
  }
  EXPECT_TRUE(policies.contains(ids::RecoveryPolicy::kHang));
  EXPECT_TRUE(policies.contains(ids::RecoveryPolicy::kColdReboot));
  EXPECT_TRUE(policies.contains(ids::RecoveryPolicy::kAppRestart));
}

TEST(ProductCatalogTest, ToStringRoundTrip) {
  EXPECT_EQ(to_string(ProductId::kSentryNid), "SentryNID");
  EXPECT_EQ(to_string(ProductId::kAgentSwarm), "AgentSwarm");
  EXPECT_THROW(to_string(ProductId::kCount), std::invalid_argument);
}

// --- Fact-sheet scoring -------------------------------------------------------

TEST(FactsScorecardTest, ScoresAllFactDerivableMetrics) {
  for (const ProductModel& model : product_catalog()) {
    const core::Scorecard card = facts_scorecard(model);
    // Complete class 1 coverage.
    for (const auto id :
         core::metrics_in_class(core::MetricClass::kLogistical)) {
      EXPECT_TRUE(card.has(id)) << model.name << " " << core::to_string(id);
    }
    // Class 2 except the two measured metrics.
    for (const auto id :
         core::metrics_in_class(core::MetricClass::kArchitectural)) {
      if (id == core::MetricId::kDataStorage ||
          id == core::MetricId::kSystemThroughput) {
        EXPECT_FALSE(card.has(id)) << model.name;
      } else {
        EXPECT_TRUE(card.has(id)) << model.name << " "
                                  << core::to_string(id);
      }
    }
  }
}

TEST(FactsScorecardTest, AnchorExamplesFromPaper) {
  // The paper's Distributed Management example: local-only management
  // scores 0; full secure remote management scores 4.
  const auto swarm_card =
      facts_scorecard(product(ProductId::kAgentSwarm));
  EXPECT_EQ(swarm_card.at(core::MetricId::kDistributedManagement)
                .score.value(),
            0);
  const auto guard_card =
      facts_scorecard(product(ProductId::kGuardSecure));
  EXPECT_EQ(guard_card.at(core::MetricId::kDistributedManagement)
                .score.value(),
            4);

  // Scalable Load-balancing anchors: none=0 ... dynamic=4.
  const auto sentry_card =
      facts_scorecard(product(ProductId::kSentryNid));
  EXPECT_EQ(sentry_card.at(core::MetricId::kScalableLoadBalancing)
                .score.value(),
            0);
  const auto flowhunt_card =
      facts_scorecard(product(ProductId::kFlowHunt));
  EXPECT_EQ(flowhunt_card.at(core::MetricId::kScalableLoadBalancing)
                .score.value(),
            4);
}

TEST(FactsScorecardTest, DetectionMechanismScores) {
  const auto flowhunt_card =
      facts_scorecard(product(ProductId::kFlowHunt));
  EXPECT_EQ(flowhunt_card.at(core::MetricId::kSignatureBased).score.value(),
            0);
  EXPECT_GE(flowhunt_card.at(core::MetricId::kAnomalyBased).score.value(),
            2);
  const auto sentry_card =
      facts_scorecard(product(ProductId::kSentryNid));
  EXPECT_GE(sentry_card.at(core::MetricId::kSignatureBased).score.value(),
            3);
  EXPECT_EQ(sentry_card.at(core::MetricId::kAnomalyBased).score.value(), 0);
}

TEST(FactsScorecardTest, ResearchPrototypeCheapButUnsupported) {
  const auto card = facts_scorecard(product(ProductId::kAgentSwarm));
  EXPECT_EQ(card.at(core::MetricId::kThreeYearCostOfOwnership)
                .score.value(),
            4);
  EXPECT_EQ(card.at(core::MetricId::kQualityOfTechnicalSupport)
                .score.value(),
            0);
  EXPECT_EQ(card.at(core::MetricId::kErrorReportingAndRecovery)
                .score.value(),
            0);  // hang anchor
}

TEST(FactsScorecardTest, RecoveryAnchorsMapToScores) {
  const auto guard = facts_scorecard(product(ProductId::kGuardSecure));
  EXPECT_EQ(guard.at(core::MetricId::kErrorReportingAndRecovery)
                .score.value(),
            4);  // app-restart
  const auto sentry = facts_scorecard(product(ProductId::kSentryNid));
  EXPECT_EQ(sentry.at(core::MetricId::kErrorReportingAndRecovery)
                .score.value(),
            2);  // cold reboot
}

}  // namespace
}  // namespace idseval::products
