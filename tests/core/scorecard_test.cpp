// Scorecard and Figure 5 weighted-score algebra, including the
// parameterized property sweeps: scale-invariance of rankings, additivity
// across classes, and negative-weight semantics.
#include "core/scorecard.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace idseval::core {
namespace {

TEST(ScorecardTest, SetAndGet) {
  Scorecard card("prod");
  EXPECT_EQ(card.product(), "prod");
  EXPECT_FALSE(card.has(MetricId::kTimeliness));
  card.set(MetricId::kTimeliness, Score(3), "0.4s mean");
  EXPECT_TRUE(card.has(MetricId::kTimeliness));
  EXPECT_EQ(card.at(MetricId::kTimeliness).score.value(), 3);
  EXPECT_EQ(card.at(MetricId::kTimeliness).note, "0.4s mean");
  EXPECT_EQ(card.score(MetricId::kTimeliness)->value(), 3);
  EXPECT_FALSE(card.score(MetricId::kVisibility).has_value());
}

TEST(ScorecardTest, AtThrowsOnUnscored) {
  const Scorecard card("prod");
  EXPECT_THROW(card.at(MetricId::kTimeliness), std::out_of_range);
}

TEST(ScorecardTest, OverwriteReplaces) {
  Scorecard card("prod");
  card.set(MetricId::kTimeliness, Score(1));
  card.set(MetricId::kTimeliness, Score(4), "re-measured");
  EXPECT_EQ(card.size(), 1u);
  EXPECT_EQ(card.at(MetricId::kTimeliness).score.value(), 4);
}

TEST(ScorecardTest, ScoredInClassFilters) {
  Scorecard card("prod");
  card.set(MetricId::kTimeliness, Score(3));          // performance
  card.set(MetricId::kLicenseManagement, Score(2));   // logistical
  card.set(MetricId::kSystemThroughput, Score(4));    // architectural
  EXPECT_EQ(card.scored_in_class(MetricClass::kPerformance).size(), 1u);
  EXPECT_EQ(card.scored_in_class(MetricClass::kLogistical).size(), 1u);
  EXPECT_EQ(card.scored_in_class(MetricClass::kArchitectural).size(), 1u);
}

TEST(WeightSetTest, DefaultsToZero) {
  const WeightSet w;
  EXPECT_EQ(w.get(MetricId::kTimeliness), 0.0);
}

TEST(WeightSetTest, AddAccumulates) {
  WeightSet w;
  w.add(MetricId::kTimeliness, 2.0);
  w.add(MetricId::kTimeliness, 3.0);
  EXPECT_DOUBLE_EQ(w.get(MetricId::kTimeliness), 5.0);
}

TEST(WeightedScoresTest, Figure5Formula) {
  // Hand-computed S_j = sum(U_ij * W_ij) per class.
  Scorecard card("prod");
  card.set(MetricId::kLicenseManagement, Score(3));   // class 1
  card.set(MetricId::kTrainingSupport, Score(1));     // class 1
  card.set(MetricId::kSystemThroughput, Score(4));    // class 2
  card.set(MetricId::kTimeliness, Score(2));          // class 3

  WeightSet w;
  w.set(MetricId::kLicenseManagement, 2.0);
  w.set(MetricId::kTrainingSupport, 1.0);
  w.set(MetricId::kSystemThroughput, 3.0);
  w.set(MetricId::kTimeliness, 5.0);

  const WeightedScores s = weighted_scores(card, w);
  EXPECT_DOUBLE_EQ(s.logistical, 3 * 2.0 + 1 * 1.0);  // 7
  EXPECT_DOUBLE_EQ(s.architectural, 4 * 3.0);          // 12
  EXPECT_DOUBLE_EQ(s.performance, 2 * 5.0);            // 10
  EXPECT_DOUBLE_EQ(s.total(), 29.0);
}

TEST(WeightedScoresTest, NegativeWeightsPenalize) {
  Scorecard card("prod");
  card.set(MetricId::kHostBased, Score(4));
  WeightSet w;
  w.set(MetricId::kHostBased, -2.0);
  EXPECT_DOUBLE_EQ(weighted_scores(card, w).total(), -8.0);
}

TEST(WeightedScoresTest, MissingScoredMetricsReported) {
  Scorecard card("prod");
  WeightSet w;
  w.set(MetricId::kTimeliness, 5.0);
  std::vector<MetricId> missing;
  const WeightedScores s = weighted_scores(card, w, &missing);
  EXPECT_DOUBLE_EQ(s.total(), 0.0);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], MetricId::kTimeliness);
}

TEST(WeightedScoresTest, ZeroWeightIgnored) {
  Scorecard card("prod");
  WeightSet w;
  w.set(MetricId::kTimeliness, 0.0);  // weighted but zero: not "missing"
  std::vector<MetricId> missing;
  weighted_scores(card, w, &missing);
  EXPECT_TRUE(missing.empty());
}

// --- Property sweeps (TEST_P) -----------------------------------------------

class WeightedScoreProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static Scorecard random_card(util::Rng& rng, const std::string& name) {
    Scorecard card(name);
    for (const Metric& m : metric_catalog()) {
      if (rng.chance(0.8)) {
        card.set(m.id, Score(static_cast<int>(rng.uniform_u64(0, 4))));
      }
    }
    return card;
  }

  static WeightSet random_weights(util::Rng& rng) {
    WeightSet w;
    for (const Metric& m : metric_catalog()) {
      if (rng.chance(0.7)) {
        w.set(m.id, rng.uniform(-2.0, 8.0));
      }
    }
    return w;
  }
};

TEST_P(WeightedScoreProperty, ScalingWeightsScalesScoresLinearly) {
  util::Rng rng(GetParam());
  const Scorecard card = random_card(rng, "p");
  WeightSet w = random_weights(rng);
  const double before = weighted_scores(card, w).total();
  w.scale(3.5);
  const double after = weighted_scores(card, w).total();
  EXPECT_NEAR(after, 3.5 * before, 1e-9 + 1e-12 * std::abs(before));
}

TEST_P(WeightedScoreProperty, ScalingPreservesRanking) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  const Scorecard a = random_card(rng, "a");
  const Scorecard b = random_card(rng, "b");
  WeightSet w = random_weights(rng);
  const bool a_wins =
      weighted_scores(a, w).total() > weighted_scores(b, w).total();
  w.scale(7.0);  // positive scaling: ranking invariant (§3.1)
  const bool a_still_wins =
      weighted_scores(a, w).total() > weighted_scores(b, w).total();
  EXPECT_EQ(a_wins, a_still_wins);
}

TEST_P(WeightedScoreProperty, TotalIsSumOfClasses) {
  util::Rng rng(GetParam() ^ 0x555);
  const Scorecard card = random_card(rng, "p");
  const WeightSet w = random_weights(rng);
  const WeightedScores s = weighted_scores(card, w);
  EXPECT_NEAR(s.total(), s.logistical + s.architectural + s.performance,
              1e-9);
}

TEST_P(WeightedScoreProperty, WeightSuperpositionIsAdditive) {
  // S(w1 + w2) == S(w1) + S(w2): the scoring functional is linear.
  util::Rng rng(GetParam() ^ 0x777);
  const Scorecard card = random_card(rng, "p");
  const WeightSet w1 = random_weights(rng);
  const WeightSet w2 = random_weights(rng);
  WeightSet sum = w1;
  for (const auto& [id, weight] : w2.weights()) sum.add(id, weight);
  const double combined = weighted_scores(card, sum).total();
  const double separate = weighted_scores(card, w1).total() +
                          weighted_scores(card, w2).total();
  EXPECT_NEAR(combined, separate, 1e-9 + 1e-12 * std::abs(combined));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedScoreProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace idseval::core
