// Figure 6 requirement-to-weight mapping tests, including monotonicity
// properties of the mapping algorithm.
#include "core/requirement.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace idseval::core {
namespace {

TEST(RequirementMapperTest, RejectsBadRank) {
  RequirementMapper mapper;
  EXPECT_THROW(mapper.add({"bad", 0, {}}), std::invalid_argument);
}

TEST(RequirementMapperTest, WeightsIncreaseWithRank) {
  RequirementMapper mapper;
  mapper.add({"least", 1, {MetricId::kTrainingSupport}});
  mapper.add({"middle", 2, {MetricId::kTimeliness}});
  mapper.add({"most", 3, {MetricId::kObservedFalseNegativeRatio}});
  const auto weights = mapper.requirement_weights();
  EXPECT_DOUBLE_EQ(weights[0], 1.0);
  EXPECT_DOUBLE_EQ(weights[1], 2.0);
  EXPECT_DOUBLE_EQ(weights[2], 3.0);
}

TEST(RequirementMapperTest, DuplicateRanksShareWeight) {
  RequirementMapper mapper;
  mapper.add({"a", 2, {}});
  mapper.add({"b", 2, {}});
  const auto weights = mapper.requirement_weights();
  EXPECT_DOUBLE_EQ(weights[0], weights[1]);
}

TEST(RequirementMapperTest, SparseRanksCompressToLadder) {
  // Ranks 1, 5, 20 still map to the ladder base, base+step, base+2*step —
  // only the ordering matters, not the absolute rank values.
  RequirementMapper mapper;
  mapper.add({"a", 1, {}});
  mapper.add({"b", 5, {}});
  mapper.add({"c", 20, {}});
  const auto weights = mapper.requirement_weights(1.0, 1.0);
  EXPECT_DOUBLE_EQ(weights[0], 1.0);
  EXPECT_DOUBLE_EQ(weights[1], 2.0);
  EXPECT_DOUBLE_EQ(weights[2], 3.0);
}

TEST(RequirementMapperTest, MetricWeightIsSumOfContributingRequirements) {
  // The Figure 6 example shape: one metric served by two requirements
  // gets the sum of their weights.
  RequirementMapper mapper;
  mapper.add({"cheap", 1, {MetricId::kThreeYearCostOfOwnership}});
  mapper.add({"fast", 2, {MetricId::kTimeliness}});
  mapper.add(
      {"accurate and fast", 3,
       {MetricId::kTimeliness, MetricId::kObservedFalseNegativeRatio}});
  const WeightSet weights = mapper.derive_weights();
  EXPECT_DOUBLE_EQ(weights.get(MetricId::kThreeYearCostOfOwnership), 1.0);
  EXPECT_DOUBLE_EQ(weights.get(MetricId::kTimeliness), 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(weights.get(MetricId::kObservedFalseNegativeRatio), 3.0);
  EXPECT_DOUBLE_EQ(weights.get(MetricId::kVisibility), 0.0);
}

TEST(RequirementMapperTest, BaseAndStepHonored) {
  RequirementMapper mapper;
  mapper.add({"a", 1, {MetricId::kTimeliness}});
  mapper.add({"b", 2, {MetricId::kTimeliness}});
  const WeightSet weights = mapper.derive_weights(10.0, 5.0);
  EXPECT_DOUBLE_EQ(weights.get(MetricId::kTimeliness), 10.0 + 15.0);
}

TEST(RequirementMapperTest, AddingRequirementNeverLowersWeights) {
  // Monotonicity: with the ladder fixed by rank set, adding a requirement
  // at an existing rank only adds weight.
  util::Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    RequirementMapper mapper;
    const int n = 3 + static_cast<int>(rng.uniform_u64(0, 4));
    for (int i = 0; i < n; ++i) {
      mapper.add({"req", 1 + static_cast<int>(rng.uniform_u64(0, 2)),
                  {static_cast<MetricId>(rng.uniform_u64(0, 10))}});
    }
    const WeightSet before = mapper.derive_weights();
    mapper.add({"extra", 2, {MetricId::kTimeliness}});
    const WeightSet after = mapper.derive_weights();
    for (const auto& [id, w] : before.weights()) {
      EXPECT_GE(after.get(id) + 1e-12, w);
    }
  }
}

TEST(BuiltinProfilesTest, RealtimeProfileShape) {
  const RequirementMapper rt = realtime_distributed_requirements();
  EXPECT_GE(rt.requirements().size(), 8u);
  const WeightSet weights = rt.derive_weights();
  // §3.3: for real-time systems, speed/accuracy of recognition and
  // automated reaction dominate; cost is least important.
  EXPECT_GT(weights.get(MetricId::kObservedFalseNegativeRatio),
            weights.get(MetricId::kThreeYearCostOfOwnership));
  EXPECT_GT(weights.get(MetricId::kTimeliness),
            weights.get(MetricId::kTrainingSupport));
  EXPECT_GT(weights.get(MetricId::kFirewallInteraction), 0.0);
  EXPECT_GT(weights.get(MetricId::kOperationalPerformanceImpact),
            weights.get(MetricId::kLicenseManagement));
}

TEST(BuiltinProfilesTest, EcommerceProfileShape) {
  const WeightSet weights = ecommerce_requirements().derive_weights();
  // The commercial profile puts false-positive suppression on top.
  EXPECT_GT(weights.get(MetricId::kObservedFalsePositiveRatio),
            weights.get(MetricId::kObservedFalseNegativeRatio));
  EXPECT_GT(weights.get(MetricId::kThreeYearCostOfOwnership),
            weights.get(MetricId::kEvidenceCollection));
}

TEST(BuiltinProfilesTest, ProfilesDisagreeOnPriorities) {
  const WeightSet rt = realtime_distributed_requirements().derive_weights();
  const WeightSet ec = ecommerce_requirements().derive_weights();
  // The FN-vs-FP priority inversion is the crux of §3.3.
  const double rt_fn_bias = rt.get(MetricId::kObservedFalseNegativeRatio) -
                            rt.get(MetricId::kObservedFalsePositiveRatio);
  const double ec_fn_bias = ec.get(MetricId::kObservedFalseNegativeRatio) -
                            ec.get(MetricId::kObservedFalsePositiveRatio);
  EXPECT_GT(rt_fn_bias, 0.0);
  EXPECT_LT(ec_fn_bias, 0.0);
}

}  // namespace
}  // namespace idseval::core
