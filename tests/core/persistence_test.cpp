#include "core/persistence.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace idseval::core {
namespace {

TEST(ScorecardPersistenceTest, RoundTrip) {
  Scorecard card("GuardSecure");
  card.set(MetricId::kTimeliness, Score(3), "0.21s mean");
  card.set(MetricId::kLicenseManagement, Score(1));
  card.set(MetricId::kObservedFalsePositiveRatio, Score(4),
           "|D-A|/|T| = 0.0001");

  const Scorecard copy = deserialize_scorecard(serialize_scorecard(card));
  EXPECT_EQ(copy.product(), "GuardSecure");
  ASSERT_EQ(copy.size(), card.size());
  for (const auto& [id, entry] : card.entries()) {
    EXPECT_EQ(copy.at(id).score, entry.score);
    EXPECT_EQ(copy.at(id).note, entry.note);
  }
}

TEST(ScorecardPersistenceTest, NoteMayContainSeparator) {
  Scorecard card("p");
  card.set(MetricId::kVisibility, Score(2), "seg A | seg B");
  const Scorecard copy = deserialize_scorecard(serialize_scorecard(card));
  EXPECT_EQ(copy.at(MetricId::kVisibility).note, "seg A | seg B");
}

TEST(ScorecardPersistenceTest, EmptyCardRoundTrips) {
  const Scorecard copy =
      deserialize_scorecard(serialize_scorecard(Scorecard("empty")));
  EXPECT_EQ(copy.product(), "empty");
  EXPECT_EQ(copy.size(), 0u);
}

TEST(ScorecardPersistenceTest, RejectsBadInput) {
  EXPECT_THROW(deserialize_scorecard("garbage"), std::invalid_argument);
  EXPECT_THROW(deserialize_scorecard("idseval-scorecard v1\nno product\n"),
               std::invalid_argument);
  EXPECT_THROW(
      deserialize_scorecard(
          "idseval-scorecard v1\nproduct: p\nNo Such Metric | 3 |\n"),
      std::invalid_argument);
  EXPECT_THROW(
      deserialize_scorecard(
          "idseval-scorecard v1\nproduct: p\nTimeliness | nine |\n"),
      std::invalid_argument);
  EXPECT_THROW(
      deserialize_scorecard(
          "idseval-scorecard v1\nproduct: p\nTimeliness | 7 |\n"),
      std::invalid_argument);  // out-of-range discrete score
}

TEST(ScorecardPersistenceTest, FullCatalogByteIdenticalRoundTrip) {
  // Every metric in the catalog scored with a note: serialize ->
  // deserialize -> serialize must reproduce the bytes exactly, so
  // version-controlled scorecards do not churn on re-save.
  util::Rng rng(4242);
  Scorecard card("FullCatalog");
  for (const Metric& m : metric_catalog()) {
    card.set(m.id, Score(static_cast<int>(rng.uniform_u64(0, 4))),
             "evidence | for " + m.name);
  }
  EXPECT_EQ(card.size(), metric_catalog().size());
  const std::string first = serialize_scorecard(card);
  const Scorecard reloaded = deserialize_scorecard(first);
  EXPECT_EQ(reloaded.size(), card.size());
  EXPECT_EQ(serialize_scorecard(reloaded), first);
}

TEST(WeightsPersistenceTest, FullCatalogByteIdenticalRoundTrip) {
  // Weight values representable at the serializer's precision (halves,
  // including negative "counterproductive feature" weights) must
  // round-trip byte-identically alongside the scorecard.
  WeightSet weights;
  double w = -4.0;
  for (const Metric& m : metric_catalog()) {
    weights.set(m.id, w);
    w += 0.5;
  }
  const std::string first = serialize_weights(weights);
  const WeightSet reloaded = deserialize_weights(first);
  EXPECT_EQ(reloaded.weights().size(), metric_catalog().size());
  EXPECT_EQ(serialize_weights(reloaded), first);
}

TEST(WeightsPersistenceTest, RoundTrip) {
  WeightSet weights;
  weights.set(MetricId::kTimeliness, 6.5);
  weights.set(MetricId::kHostBased, -2.0);
  const WeightSet copy = deserialize_weights(serialize_weights(weights));
  EXPECT_DOUBLE_EQ(copy.get(MetricId::kTimeliness), 6.5);
  EXPECT_DOUBLE_EQ(copy.get(MetricId::kHostBased), -2.0);
  EXPECT_EQ(copy.weights().size(), 2u);
}

TEST(WeightsPersistenceTest, RejectsBadInput) {
  EXPECT_THROW(deserialize_weights("nope"), std::invalid_argument);
  EXPECT_THROW(
      deserialize_weights("idseval-weights v1\nNo Such Metric | 1\n"),
      std::invalid_argument);
  EXPECT_THROW(deserialize_weights("idseval-weights v1\nTimeliness | x\n"),
               std::invalid_argument);
}

TEST(PersistenceTest, ReuseWorkflow) {
  // The §1 reuse claim as a test: score once, persist, re-weight twice
  // without re-measuring, get the same totals as live computation.
  util::Rng rng(8);
  Scorecard card("p");
  for (const Metric& m : metric_catalog()) {
    card.set(m.id, Score(static_cast<int>(rng.uniform_u64(0, 4))));
  }
  const std::string stored = serialize_scorecard(card);

  const Scorecard reloaded = deserialize_scorecard(stored);
  using MapperFn = RequirementMapper (*)();
  for (const MapperFn mapper_fn :
       {&realtime_distributed_requirements, &ecommerce_requirements}) {
    const WeightSet weights = mapper_fn().derive_weights();
    EXPECT_DOUBLE_EQ(weighted_scores(reloaded, weights).total(),
                     weighted_scores(card, weights).total());
  }
}

}  // namespace
}  // namespace idseval::core
