#include "core/autoscore.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace idseval::core {
namespace {

TEST(ScoreBetweenTest, LinearEndpoints) {
  EXPECT_EQ(score_between(0.0, 0.0, 10.0, true).value(), 0);
  EXPECT_EQ(score_between(10.0, 0.0, 10.0, true).value(), 4);
  EXPECT_EQ(score_between(5.0, 0.0, 10.0, true).value(), 2);
}

TEST(ScoreBetweenTest, LowerIsBetterFlips) {
  EXPECT_EQ(score_between(0.0, 0.0, 10.0, false).value(), 4);
  EXPECT_EQ(score_between(10.0, 0.0, 10.0, false).value(), 0);
}

TEST(ScoreBetweenTest, ClampsOutOfRange) {
  EXPECT_EQ(score_between(-100.0, 0.0, 10.0, true).value(), 0);
  EXPECT_EQ(score_between(1e9, 0.0, 10.0, true).value(), 4);
}

TEST(ScoreBetweenTest, GeometricMidpoint) {
  // Geometric: 1 .. 100, midpoint 10 -> position 0.5 -> score 2.
  EXPECT_EQ(score_between(10.0, 1.0, 100.0, true, true).value(), 2);
  EXPECT_EQ(score_between(1.0, 1.0, 100.0, true, true).value(), 0);
  EXPECT_EQ(score_between(100.0, 1.0, 100.0, true, true).value(), 4);
}

TEST(ScoreBetweenTest, MonotoneInValue) {
  int last = -1;
  for (double v = 0.0; v <= 10.0; v += 0.25) {
    const int s = score_between(v, 0.0, 10.0, true).value();
    EXPECT_GE(s, last);
    last = s;
  }
}

TEST(ThroughputScoresTest, AnchorsFromCatalog) {
  // <5k low, >50k high (System Throughput anchors).
  EXPECT_LE(score_system_throughput(1000.0).value(), 1);
  EXPECT_EQ(score_system_throughput(200'000.0).value(), 4);
  EXPECT_GE(score_system_throughput(60'000.0).value(), 3);
  // Zero-loss: <2k low, >20k high.
  EXPECT_LE(score_zero_loss_throughput(500.0).value(), 1);
  EXPECT_EQ(score_zero_loss_throughput(80'000.0).value(), 4);
}

TEST(LatencyScoreTest, PassiveTapScoresHigh) {
  EXPECT_EQ(score_induced_latency(0.0).value(), 4);
  EXPECT_EQ(score_induced_latency(5e-6).value(), 4);
  EXPECT_LE(score_induced_latency(5e-3).value(), 0);
  EXPECT_GT(score_induced_latency(50e-6).value(),
            score_induced_latency(1e-3).value());
}

TEST(LethalDoseScoreTest, InfiniteIsPerfect) {
  EXPECT_EQ(
      score_lethal_dose_ratio(std::numeric_limits<double>::infinity())
          .value(),
      4);
  EXPECT_LE(score_lethal_dose_ratio(1.1).value(), 0);
  EXPECT_GT(score_lethal_dose_ratio(6.0).value(),
            score_lethal_dose_ratio(2.0).value());
}

TEST(FnScoreTest, NormalizedByAttackShare) {
  // Missing every attack (ratio == attack share) scores 0.
  EXPECT_EQ(score_false_negative_ratio(0.01, 0.01).value(), 0);
  // Missing nothing scores 4.
  EXPECT_EQ(score_false_negative_ratio(0.0, 0.01).value(), 4);
  // Half missed lands mid-scale.
  EXPECT_EQ(score_false_negative_ratio(0.005, 0.01).value(), 2);
  // No attacks in corpus: vacuous 4.
  EXPECT_EQ(score_false_negative_ratio(0.0, 0.0).value(), 4);
}

TEST(FpScoreTest, Shape) {
  EXPECT_EQ(score_false_positive_ratio(0.0).value(), 4);
  EXPECT_LE(score_false_positive_ratio(0.2).value(), 0);
  EXPECT_GT(score_false_positive_ratio(0.001).value(),
            score_false_positive_ratio(0.05).value());
}

TEST(HostImpactScoreTest, PaperAnchors) {
  // Dedicated sensor (no host impact) -> 4.
  EXPECT_EQ(score_host_cpu_impact(0.0).value(), 4);
  // Nominal logging 3-5% -> around the average anchor.
  const int nominal = score_host_cpu_impact(0.04).value();
  EXPECT_GE(nominal, 1);
  EXPECT_LE(nominal, 3);
  // C2-audit ~20% -> low.
  EXPECT_LE(score_host_cpu_impact(0.20).value(), 1);
}

TEST(TimelinessScoreTest, PaperAnchors) {
  EXPECT_EQ(score_timeliness(0.2).value(), 4);   // sub-second
  EXPECT_LE(score_timeliness(150.0).value(), 0); // over a minute
  EXPECT_GT(score_timeliness(2.0).value(), score_timeliness(90.0).value());
}

TEST(DataStorageScoreTest, Shape) {
  EXPECT_EQ(score_data_storage(1'000.0).value(), 4);    // ~1KB/MB
  EXPECT_LE(score_data_storage(500'000.0).value(), 0);  // 500KB/MB
}

}  // namespace
}  // namespace idseval::core
