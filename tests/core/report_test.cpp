#include "core/report.hpp"

#include <gtest/gtest.h>

namespace idseval::core {
namespace {

std::vector<Scorecard> two_cards() {
  Scorecard a("AlphaIDS");
  a.set(MetricId::kTimeliness, Score(4), "0.3s");
  a.set(MetricId::kLicenseManagement, Score(1));
  Scorecard b("BetaIDS");
  b.set(MetricId::kTimeliness, Score(2), "12s");
  b.set(MetricId::kLicenseManagement, Score(3));
  return {a, b};
}

TEST(ReportTest, MetricTableHasProductsAndScores) {
  const auto cards = two_cards();
  const MetricId metrics[] = {MetricId::kTimeliness,
                              MetricId::kLicenseManagement,
                              MetricId::kVisibility};
  const std::string out =
      render_metric_table("Title", metrics, cards, false);
  EXPECT_NE(out.find("AlphaIDS"), std::string::npos);
  EXPECT_NE(out.find("BetaIDS"), std::string::npos);
  EXPECT_NE(out.find("Timeliness"), std::string::npos);
  // Unscored metric renders as "-".
  EXPECT_NE(out.find("Visibility"), std::string::npos);
  EXPECT_NE(out.find(" - "), std::string::npos);
}

TEST(ReportTest, MetricTableNotes) {
  const auto cards = two_cards();
  const MetricId metrics[] = {MetricId::kTimeliness};
  const std::string with_notes =
      render_metric_table("T", metrics, cards, true);
  EXPECT_NE(with_notes.find("0.3s"), std::string::npos);
  const std::string without =
      render_metric_table("T", metrics, cards, false);
  EXPECT_EQ(without.find("0.3s"), std::string::npos);
}

TEST(ReportTest, WeightedSummaryRanksByTotal) {
  const auto cards = two_cards();
  WeightSet w;
  w.set(MetricId::kTimeliness, 5.0);        // Alpha: 20, Beta: 10
  w.set(MetricId::kLicenseManagement, 1.0); // Alpha: 1, Beta: 3
  const std::string out = render_weighted_summary("Summary", cards, w);
  // Alpha (21) must rank above Beta (13).
  EXPECT_LT(out.find("AlphaIDS"), out.find("BetaIDS"));
  EXPECT_NE(out.find("21.0"), std::string::npos);
  EXPECT_NE(out.find("13.0"), std::string::npos);
}

TEST(ReportTest, RequirementMappingRendersBothTables) {
  const std::string out =
      render_requirement_mapping(realtime_distributed_requirements());
  EXPECT_NE(out.find("Requirements (least to most important)"),
            std::string::npos);
  EXPECT_NE(out.find("Derived metric weights"), std::string::npos);
  EXPECT_NE(out.find("Observed False Negative Ratio"), std::string::npos);
}

TEST(ReportTest, MetricDefinitionHasAnchors) {
  const std::string out =
      render_metric_definition(MetricId::kErrorReportingAndRecovery);
  EXPECT_NE(out.find("Error Reporting and Recovery"), std::string::npos);
  EXPECT_NE(out.find("Low (0):"), std::string::npos);
  EXPECT_NE(out.find("Average (2):"), std::string::npos);
  EXPECT_NE(out.find("High (4):"), std::string::npos);
  EXPECT_NE(out.find("cold reboot"), std::string::npos);
}

}  // namespace
}  // namespace idseval::core
