#include "core/report.hpp"

#include <gtest/gtest.h>

#include "util/table.hpp"

namespace idseval::core {
namespace {

std::vector<Scorecard> two_cards() {
  Scorecard a("AlphaIDS");
  a.set(MetricId::kTimeliness, Score(4), "0.3s");
  a.set(MetricId::kLicenseManagement, Score(1));
  Scorecard b("BetaIDS");
  b.set(MetricId::kTimeliness, Score(2), "12s");
  b.set(MetricId::kLicenseManagement, Score(3));
  return {a, b};
}

TEST(ReportTest, MetricTableHasProductsAndScores) {
  const auto cards = two_cards();
  const MetricId metrics[] = {MetricId::kTimeliness,
                              MetricId::kLicenseManagement,
                              MetricId::kVisibility};
  const std::string out =
      render_metric_table("Title", metrics, cards, false);
  EXPECT_NE(out.find("AlphaIDS"), std::string::npos);
  EXPECT_NE(out.find("BetaIDS"), std::string::npos);
  EXPECT_NE(out.find("Timeliness"), std::string::npos);
  // Unscored metric renders as "-".
  EXPECT_NE(out.find("Visibility"), std::string::npos);
  EXPECT_NE(out.find(" - "), std::string::npos);
}

TEST(ReportTest, MetricTableNotes) {
  const auto cards = two_cards();
  const MetricId metrics[] = {MetricId::kTimeliness};
  const std::string with_notes =
      render_metric_table("T", metrics, cards, true);
  EXPECT_NE(with_notes.find("0.3s"), std::string::npos);
  const std::string without =
      render_metric_table("T", metrics, cards, false);
  EXPECT_EQ(without.find("0.3s"), std::string::npos);
}

TEST(ReportTest, WeightedSummaryRanksByTotal) {
  const auto cards = two_cards();
  WeightSet w;
  w.set(MetricId::kTimeliness, 5.0);        // Alpha: 20, Beta: 10
  w.set(MetricId::kLicenseManagement, 1.0); // Alpha: 1, Beta: 3
  const std::string out = render_weighted_summary("Summary", cards, w);
  // Alpha (21) must rank above Beta (13).
  EXPECT_LT(out.find("AlphaIDS"), out.find("BetaIDS"));
  EXPECT_NE(out.find("21.0"), std::string::npos);
  EXPECT_NE(out.find("13.0"), std::string::npos);
}

TEST(ReportTest, RequirementMappingRendersBothTables) {
  const std::string out =
      render_requirement_mapping(realtime_distributed_requirements());
  EXPECT_NE(out.find("Requirements (least to most important)"),
            std::string::npos);
  EXPECT_NE(out.find("Derived metric weights"), std::string::npos);
  EXPECT_NE(out.find("Observed False Negative Ratio"), std::string::npos);
}

// Regression for the Doc-backed rewrite: the rendered report must be
// byte-identical to the legacy renderer, which drove util::TextTable
// directly with the same cells. Any drift in the Doc/table bridge shows
// up here as a whitespace-exact diff.
TEST(ReportTest, DocBackedRenderMatchesLegacyTextTableBytes) {
  const auto cards = two_cards();
  const MetricId metrics[] = {MetricId::kTimeliness,
                              MetricId::kLicenseManagement,
                              MetricId::kVisibility};
  const std::string rendered =
      render_metric_table("Performance metrics", metrics, cards, true);

  util::TextTable legacy({"Metric", "AlphaIDS", "BetaIDS"},
                         {util::Align::kLeft, util::Align::kRight,
                          util::Align::kRight});
  legacy.set_title("Performance metrics");
  legacy.add_row({"Timeliness", "4 (0.3s)", "2 (12s)"});
  legacy.add_row({"License Management", "1", "3"});
  legacy.add_row({"Visibility", "-", "-"});
  EXPECT_EQ(rendered, legacy.render());

  WeightSet w;
  w.set(MetricId::kTimeliness, 5.0);
  w.set(MetricId::kLicenseManagement, 1.0);
  const std::string summary =
      render_weighted_summary("Ranking", cards, w);
  util::TextTable legacy_summary(
      {"Rank", "Product", "S1 (Logistical)", "S2 (Architectural)",
       "S3 (Performance)", "Total"},
      {util::Align::kRight, util::Align::kLeft, util::Align::kRight,
       util::Align::kRight, util::Align::kRight, util::Align::kRight});
  legacy_summary.set_title("Ranking");
  // Timeliness is S3, License Management is S1: Alpha 1.0 + 20.0 = 21,
  // Beta 3.0 + 10.0 = 13.
  legacy_summary.add_row({"1", "AlphaIDS", "1.0", "0.0", "20.0", "21.0"});
  legacy_summary.add_row({"2", "BetaIDS", "3.0", "0.0", "10.0", "13.0"});
  EXPECT_EQ(summary, legacy_summary.render());
}

TEST(ReportTest, MetricDefinitionHasAnchors) {
  const std::string out =
      render_metric_definition(MetricId::kErrorReportingAndRecovery);
  EXPECT_NE(out.find("Error Reporting and Recovery"), std::string::npos);
  EXPECT_NE(out.find("Low (0):"), std::string::npos);
  EXPECT_NE(out.find("Average (2):"), std::string::npos);
  EXPECT_NE(out.find("High (4):"), std::string::npos);
  EXPECT_NE(out.find("cold reboot"), std::string::npos);
}

}  // namespace
}  // namespace idseval::core
