#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace idseval::core {
namespace {

std::vector<Scorecard> two_products() {
  Scorecard a("Alpha");
  a.set(MetricId::kTimeliness, Score(4));
  a.set(MetricId::kThreeYearCostOfOwnership, Score(0));
  Scorecard b("Beta");
  b.set(MetricId::kTimeliness, Score(1));
  b.set(MetricId::kThreeYearCostOfOwnership, Score(4));
  return {a, b};
}

TEST(RankProductsTest, OrdersByTotal) {
  const auto cards = two_products();
  WeightSet w;
  w.set(MetricId::kTimeliness, 5.0);  // Alpha 20 vs Beta 5
  w.set(MetricId::kThreeYearCostOfOwnership, 1.0);  // +0 vs +4
  const auto order = rank_products(cards, w);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(RankProductsTest, StableOnTies) {
  Scorecard a("A");
  Scorecard b("B");
  a.set(MetricId::kTimeliness, Score(2));
  b.set(MetricId::kTimeliness, Score(2));
  WeightSet w;
  w.set(MetricId::kTimeliness, 1.0);
  const std::vector<Scorecard> cards = {a, b};
  const auto order = rank_products(cards, w);
  EXPECT_EQ(order[0], 0u);  // input order preserved
}

TEST(WinnerFlipTest, ExactFlipPoint) {
  // Alpha total = 5k*4 + 0 (timeliness weight k*5), Beta = 5k + 4.
  // With w_time = 5: Alpha 20, Beta 5+4 = 9 -> Alpha wins by 11.
  // Scaling w_time by k: Alpha 20k, Beta 5k + 4. Flip at 15k = 4 ->
  // k = 4/15 ~ 0.267.
  const auto cards = two_products();
  WeightSet w;
  w.set(MetricId::kTimeliness, 5.0);
  w.set(MetricId::kThreeYearCostOfOwnership, 1.0);
  const auto flip = winner_flip_scale(cards, w, MetricId::kTimeliness);
  ASSERT_TRUE(flip.has_value());
  EXPECT_NEAR(*flip, 4.0 / 15.0, 1e-9);

  // Verify: applying the flip scale actually changes the winner.
  WeightSet flipped = w;
  flipped.set(MetricId::kTimeliness, 5.0 * (*flip) * 0.99);
  EXPECT_EQ(rank_products(cards, flipped)[0], 1u);
}

TEST(WinnerFlipTest, GrowingWeightCanFlipToo) {
  const auto cards = two_products();
  WeightSet w;
  w.set(MetricId::kTimeliness, 5.0);
  w.set(MetricId::kThreeYearCostOfOwnership, 1.0);
  // Growing the cost weight favours Beta (U: 4 vs 0). Gap 11, slope 4.
  const auto flip =
      winner_flip_scale(cards, w, MetricId::kThreeYearCostOfOwnership);
  ASSERT_TRUE(flip.has_value());
  EXPECT_NEAR(*flip, 1.0 + 11.0 / 4.0, 1e-9);
  EXPECT_GT(*flip, 1.0);
}

TEST(WinnerFlipTest, UnweightedMetricGivesNothing) {
  const auto cards = two_products();
  WeightSet w;
  w.set(MetricId::kTimeliness, 5.0);
  EXPECT_FALSE(
      winner_flip_scale(cards, w, MetricId::kVisibility).has_value());
}

TEST(WinnerFlipTest, EqualScoresNeverFlip) {
  Scorecard a("A");
  a.set(MetricId::kTimeliness, Score(3));
  a.set(MetricId::kVisibility, Score(4));
  Scorecard b("B");
  b.set(MetricId::kTimeliness, Score(3));  // same U on this metric
  b.set(MetricId::kVisibility, Score(1));
  const std::vector<Scorecard> cards = {a, b};
  WeightSet w;
  w.set(MetricId::kTimeliness, 2.0);
  w.set(MetricId::kVisibility, 1.0);
  EXPECT_FALSE(
      winner_flip_scale(cards, w, MetricId::kTimeliness).has_value());
}

TEST(WinnerFlipTest, SingleProductNothingToFlip) {
  const std::vector<Scorecard> one = {Scorecard("Solo")};
  WeightSet w;
  w.set(MetricId::kTimeliness, 1.0);
  EXPECT_FALSE(
      winner_flip_scale(one, w, MetricId::kTimeliness).has_value());
}

TEST(WeightRobustnessTest, CoversAllWeightedMetricsSortedByFragility) {
  const auto cards = two_products();
  WeightSet w;
  w.set(MetricId::kTimeliness, 5.0);
  w.set(MetricId::kThreeYearCostOfOwnership, 1.0);
  w.set(MetricId::kVisibility, 0.0);  // zero weight: excluded
  const auto robustness = weight_robustness(cards, w);
  ASSERT_EQ(robustness.size(), 2u);
  // Cost flip (3.75x, |log|~1.32) is less fragile than timeliness flip
  // (0.267x, |log|~1.32)... compute: log(3.75)=1.3218, log(0.2667)=-1.3218
  // — equal distance; stable sort keeps map order (cost enum < timeliness
  // is false: kThreeYearCost=12 < kTimeliness=42) so first is cost.
  for (const auto& entry : robustness) {
    EXPECT_TRUE(entry.flip_scale.has_value());
  }
}

TEST(WeightRobustnessTest, FlipScaleVerifiedByPerturbation) {
  // Property: perturbing just past the reported flip factor changes the
  // ranking; perturbing just inside it does not.
  util::Rng rng(77);
  for (int round = 0; round < 15; ++round) {
    std::vector<Scorecard> cards;
    for (int p = 0; p < 3; ++p) {
      Scorecard card("P" + std::to_string(p));
      for (int m = 0; m < 6; ++m) {
        card.set(static_cast<MetricId>(m),
                 Score(static_cast<int>(rng.uniform_u64(0, 4))));
      }
      cards.push_back(card);
    }
    WeightSet w;
    for (int m = 0; m < 6; ++m) {
      w.set(static_cast<MetricId>(m), rng.uniform(0.5, 5.0));
    }
    const auto baseline_winner = rank_products(cards, w)[0];
    for (const auto& entry : weight_robustness(cards, w)) {
      if (!entry.flip_scale) continue;
      const double k = *entry.flip_scale;
      WeightSet past = w;
      // Step just past the crossing, in the right direction.
      const double past_k = k > 1.0 ? k * 1.01 : k * 0.99;
      past.set(entry.metric, entry.weight * past_k);
      EXPECT_NE(rank_products(cards, past)[0], baseline_winner)
          << "metric " << to_string(entry.metric) << " k=" << k;
    }
  }
}

TEST(WinnerFlipTest, ExactTieReportsUnitScaleAsFragile) {
  // A and B tie exactly (totals 6 vs 6 with unit weights) but differ on
  // both metrics, so any perturbation of either weight flips the winner.
  // The crossing sits at k = 1.0; it used to be skipped (gap == 0
  // challengers were dropped), hiding the most fragile decision of all.
  Scorecard a("A");
  a.set(MetricId::kTimeliness, Score(4));
  a.set(MetricId::kThreeYearCostOfOwnership, Score(2));
  Scorecard b("B");
  b.set(MetricId::kTimeliness, Score(2));
  b.set(MetricId::kThreeYearCostOfOwnership, Score(4));
  const std::vector<Scorecard> cards = {a, b};
  WeightSet w;
  w.set(MetricId::kTimeliness, 1.0);
  w.set(MetricId::kThreeYearCostOfOwnership, 1.0);

  for (const MetricId metric :
       {MetricId::kTimeliness, MetricId::kThreeYearCostOfOwnership}) {
    const auto flip = winner_flip_scale(cards, w, metric);
    ASSERT_TRUE(flip.has_value()) << to_string(metric);
    EXPECT_DOUBLE_EQ(*flip, 1.0) << to_string(metric);
  }

  // k = 1.0 has zero log-distance from the baseline: the report must
  // call it out as FRAGILE.
  const std::string report = render_weight_robustness(cards, w);
  EXPECT_NE(report.find("1.00x"), std::string::npos) << report;
  EXPECT_NE(report.find("FRAGILE"), std::string::npos) << report;
}

}  // namespace
}  // namespace idseval::core
