// Parameterized property sweeps over the anchor-based autoscorer: every
// converter must be monotone in its measurement, bounded to the discrete
// 0..4 range, and orientation-correct (better measurements never score
// worse). These properties are what make the scorecard "observable,
// reproducible, quantifiable" (§3.1) when fed by the harness.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/autoscore.hpp"
#include "util/rng.hpp"

namespace idseval::core {
namespace {

struct ConverterCase {
  const char* name;
  std::function<Score(double)> convert;
  bool higher_is_better;
  double lo;   ///< Sweep range start.
  double hi;   ///< Sweep range end.
  bool log_sweep;
};

class AutoscoreProperty : public ::testing::TestWithParam<ConverterCase> {};

TEST_P(AutoscoreProperty, BoundedAndMonotone) {
  const ConverterCase& c = GetParam();
  int last = c.higher_is_better ? -1 : 5;
  const int steps = 200;
  for (int i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) / steps;
    const double value =
        c.log_sweep ? c.lo * std::pow(c.hi / c.lo, t)
                    : c.lo + t * (c.hi - c.lo);
    const int score = c.convert(value).value();
    EXPECT_GE(score, 0);
    EXPECT_LE(score, 4);
    if (c.higher_is_better) {
      EXPECT_GE(score, last) << c.name << " at " << value;
      last = std::max(last, score);
    } else {
      EXPECT_LE(score, last) << c.name << " at " << value;
      last = std::min(last, score);
    }
  }
}

TEST_P(AutoscoreProperty, ExtremesHitAnchorScores) {
  const ConverterCase& c = GetParam();
  const int at_lo = c.convert(c.lo).value();
  const int at_hi = c.convert(c.hi).value();
  if (c.higher_is_better) {
    EXPECT_EQ(at_lo, 0) << c.name;
    EXPECT_EQ(at_hi, 4) << c.name;
  } else {
    EXPECT_EQ(at_lo, 4) << c.name;
    EXPECT_EQ(at_hi, 0) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Converters, AutoscoreProperty,
    ::testing::Values(
        ConverterCase{"system_throughput",
                      [](double v) { return score_system_throughput(v); },
                      true, 100.0, 1e6, true},
        ConverterCase{"zero_loss",
                      [](double v) {
                        return score_zero_loss_throughput(v);
                      },
                      true, 50.0, 1e6, true},
        ConverterCase{"data_storage",
                      [](double v) { return score_data_storage(v); },
                      false, 100.0, 1e7, true},
        ConverterCase{"induced_latency",
                      [](double v) { return score_induced_latency(v); },
                      false, 1e-6, 0.1, true},
        ConverterCase{"fp_ratio",
                      [](double v) {
                        return score_false_positive_ratio(v);
                      },
                      false, 1e-5, 0.5, true},
        ConverterCase{"host_impact",
                      [](double v) { return score_host_cpu_impact(v); },
                      false, 1e-4, 0.9, true},
        ConverterCase{"timeliness",
                      [](double v) { return score_timeliness(v); },
                      false, 0.01, 1000.0, true},
        ConverterCase{"lethal_ratio",
                      [](double v) {
                        return score_lethal_dose_ratio(v);
                      },
                      true, 1.0, 50.0, true}),
    [](const ::testing::TestParamInfo<ConverterCase>& info) {
      return info.param.name;
    });

TEST(FnRatioProperty, MonotoneInMissesForFixedShare) {
  util::Rng rng(3);
  for (int round = 0; round < 30; ++round) {
    const double share = rng.uniform(0.001, 0.2);
    int last = 5;
    for (double missed = 0.0; missed <= 1.0; missed += 0.05) {
      const int s =
          score_false_negative_ratio(missed * share, share).value();
      EXPECT_LE(s, last);
      last = std::min(last, s);
    }
  }
}

}  // namespace
}  // namespace idseval::core
