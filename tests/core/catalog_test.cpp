#include "core/catalog.hpp"

#include <gtest/gtest.h>

#include <set>

namespace idseval::core {
namespace {

TEST(ScoreTest, AcceptsDiscreteRange) {
  for (int v = 0; v <= 4; ++v) {
    EXPECT_EQ(Score(v).value(), v);
  }
}

TEST(ScoreTest, RejectsOutOfRange) {
  EXPECT_THROW(Score(-1), std::invalid_argument);
  EXPECT_THROW(Score(5), std::invalid_argument);
}

TEST(CatalogTest, CompleteAndOrdered) {
  const auto& catalog = metric_catalog();
  EXPECT_EQ(catalog.size(), kMetricCount);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(catalog[i].id), i);
  }
}

TEST(CatalogTest, EveryMetricFullyDefined) {
  for (const Metric& m : metric_catalog()) {
    EXPECT_FALSE(m.name.empty());
    EXPECT_FALSE(m.definition.empty()) << m.name;
    // Well-defined metrics need all three anchors (§3.1: definitions
    // include examples of low, average, and high scores).
    EXPECT_FALSE(m.low_anchor.empty()) << m.name;
    EXPECT_FALSE(m.average_anchor.empty()) << m.name;
    EXPECT_FALSE(m.high_anchor.empty()) << m.name;
  }
}

TEST(CatalogTest, NamesUnique) {
  std::set<std::string> names;
  for (const Metric& m : metric_catalog()) {
    EXPECT_TRUE(names.insert(m.name).second) << m.name;
  }
}

TEST(CatalogTest, RoundTripNameLookup) {
  for (const Metric& m : metric_catalog()) {
    EXPECT_EQ(metric_id_from_string(m.name), m.id);
  }
  EXPECT_THROW(metric_id_from_string("No Such Metric"),
               std::invalid_argument);
}

TEST(CatalogTest, ClassPartitionCoversEverything) {
  const auto logistical = metrics_in_class(MetricClass::kLogistical);
  const auto architectural = metrics_in_class(MetricClass::kArchitectural);
  const auto performance = metrics_in_class(MetricClass::kPerformance);
  EXPECT_EQ(logistical.size() + architectural.size() + performance.size(),
            kMetricCount);
  // The paper's counts: 14 logistical, 16 architectural, 22 performance.
  EXPECT_EQ(logistical.size(), 14u);
  EXPECT_EQ(architectural.size(), 16u);
  EXPECT_EQ(performance.size(), 22u);
}

TEST(CatalogTest, TableSubsetsMatchPaper) {
  // Table 1: six selected logistical metrics.
  EXPECT_EQ(table1_logistical_metrics().size(), 6u);
  // Table 2: eight selected architectural metrics.
  EXPECT_EQ(table2_architectural_metrics().size(), 8u);
  // Table 3: twelve selected performance metrics.
  EXPECT_EQ(table3_performance_metrics().size(), 12u);

  for (const auto id : table1_logistical_metrics()) {
    EXPECT_EQ(metric(id).metric_class, MetricClass::kLogistical);
  }
  for (const auto id : table2_architectural_metrics()) {
    EXPECT_EQ(metric(id).metric_class, MetricClass::kArchitectural);
  }
  for (const auto id : table3_performance_metrics()) {
    EXPECT_EQ(metric(id).metric_class, MetricClass::kPerformance);
  }
}

TEST(CatalogTest, SelectedTableMetricsByName) {
  // Spot-check the exact metrics the paper's tables list.
  EXPECT_EQ(metric(MetricId::kDistributedManagement).name,
            "Distributed Management");
  EXPECT_EQ(metric(MetricId::kScalableLoadBalancing).name,
            "Scalable Load-balancing");
  EXPECT_EQ(metric(MetricId::kNetworkLethalDose).name,
            "Network Lethal Dose");
  EXPECT_EQ(metric(MetricId::kObservedFalseNegativeRatio).name,
            "Observed False Negative Ratio");
}

TEST(CatalogTest, ClassNames) {
  EXPECT_EQ(to_string(MetricClass::kLogistical), "Logistical");
  EXPECT_EQ(to_string(MetricClass::kArchitectural), "Architectural");
  EXPECT_EQ(to_string(MetricClass::kPerformance), "Performance");
  EXPECT_EQ(to_string(Observation::kAnalysis), "analysis");
  EXPECT_EQ(to_string(Observation::kOpenSource), "open-source");
  EXPECT_EQ(to_string(Observation::kBoth), "both");
}

}  // namespace
}  // namespace idseval::core
