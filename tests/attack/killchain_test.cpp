#include "attack/killchain.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "netsim/network.hpp"
#include "netsim/simulator.hpp"
#include "traffic/ledger.hpp"

namespace idseval::attack {
namespace {

using netsim::Ipv4;
using netsim::SimTime;

TEST(KillChainTest, PresetIsDeterministicInSeed) {
  for (const std::string& name : KillChain::preset_names()) {
    const KillChain a =
        KillChain::preset(name, 1234, SimTime::from_sec(5), 4, 8);
    const KillChain b =
        KillChain::preset(name, 1234, SimTime::from_sec(5), 4, 8);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (std::size_t s = 0; s < a.size(); ++s) {
      const ChainStage& sa = a.stages()[s];
      const ChainStage& sb = b.stages()[s];
      EXPECT_EQ(sa.stage, sb.stage);
      ASSERT_EQ(sa.steps.size(), sb.steps.size());
      for (std::size_t i = 0; i < sa.steps.size(); ++i) {
        EXPECT_EQ(sa.steps[i].when, sb.steps[i].when);
        EXPECT_EQ(sa.steps[i].kind, sb.steps[i].kind);
        EXPECT_EQ(sa.steps[i].attacker_index, sb.steps[i].attacker_index);
        EXPECT_EQ(sa.steps[i].victim_index, sb.steps[i].victim_index);
      }
    }
  }
}

TEST(KillChainTest, PresetsFollowTheCanonicalArc) {
  for (const std::string& name : KillChain::preset_names()) {
    const KillChain chain =
        KillChain::preset(name, 7, SimTime::from_sec(2));
    ASSERT_EQ(chain.size(), 4u) << name;
    EXPECT_EQ(chain.stages()[0].stage, Stage::kRecon);
    EXPECT_EQ(chain.stages()[1].stage, Stage::kExploit);
    EXPECT_EQ(chain.stages()[2].stage, Stage::kLateral);
    EXPECT_EQ(chain.stages()[3].stage, Stage::kExfil);
    EXPECT_FALSE(chain.singleton());
    // Lateral and exfil pivot onto hosts the exploit stage compromised.
    EXPECT_TRUE(chain.stages()[1].compromises);
    EXPECT_TRUE(chain.stages()[2].pivot);
    EXPECT_TRUE(chain.stages()[3].pivot);
  }
}

TEST(KillChainTest, UnknownPresetThrows) {
  EXPECT_THROW(KillChain::preset("nope", 1, SimTime::from_sec(1)),
               std::invalid_argument);
}

TEST(KillChainTest, SingletonFlattensToScenarioMultiStageThrows) {
  KillChain one("one");
  ChainStage stage;
  stage.stage = Stage::kRecon;
  ScenarioStep step;
  step.when = SimTime::from_ms(25);
  step.kind = AttackKind::kPortScan;
  stage.steps.push_back(step);
  one.add_stage(stage);
  EXPECT_TRUE(one.singleton());
  const Scenario flat = one.to_scenario();
  ASSERT_EQ(flat.steps().size(), 1u);
  EXPECT_EQ(flat.steps()[0].kind, AttackKind::kPortScan);
  EXPECT_EQ(flat.steps()[0].when, SimTime::from_ms(25));

  const KillChain multi =
      KillChain::preset("intrusion", 9, SimTime::from_sec(1));
  EXPECT_THROW(multi.to_scenario(), std::logic_error);
}

TEST(KillChainTest, HistogramCountsAcrossStages) {
  const KillChain chain =
      KillChain::preset("intrusion", 3, SimTime::from_sec(1));
  const auto counts = chain.histogram();
  std::size_t total = 0;
  for (const auto& [kind, n] : counts) total += n;
  EXPECT_EQ(total, chain.total_steps());
  const std::size_t* scans = counts.find(AttackKind::kPortScan);
  ASSERT_NE(scans, nullptr);
  EXPECT_EQ(*scans, 1u);
}

class KillChainRunTest : public ::testing::Test {
 protected:
  KillChainRunTest() : net_(sim_), emitter_(sim_, net_, ledger_, 99) {
    for (int i = 1; i <= 4; ++i) {
      internal_.emplace_back(10, 0, 0, static_cast<std::uint8_t>(i));
      net_.add_host("node", internal_.back());
    }
    external_.emplace_back(198, 51, 100, 1);
    net_.add_external_host("ext", external_.back());
  }

  netsim::Simulator sim_;
  netsim::Network net_;
  traffic::TransactionLedger ledger_;
  AttackEmitter emitter_;
  std::vector<Ipv4> internal_;
  std::vector<Ipv4> external_;
};

TEST_F(KillChainRunTest, LaterStagesLaunchAfterEarlierFlowsComplete) {
  const KillChain chain =
      KillChain::preset("intrusion", 42, SimTime::from_ms(200));
  const auto flows =
      chain.run(emitter_, external_, internal_, SimTime::from_ms(10));
  EXPECT_EQ(flows.size(), chain.total_steps());
  const auto& launches = chain.last_run();
  ASSERT_EQ(launches.size(), chain.size());
  for (std::size_t s = 1; s < launches.size(); ++s) {
    // Stage s begins only after stage s-1's last scheduled packet plus
    // the dwell gap.
    EXPECT_GE(launches[s].begin,
              launches[s - 1].end + chain.stages()[s - 1].gap_after)
        << "stage " << s;
    EXPECT_GE(launches[s].end, launches[s].begin);
  }
  sim_.run_until();  // the schedule must actually execute
}

TEST_F(KillChainRunTest, GroundTruthCarriesStageLabels) {
  const KillChain chain =
      KillChain::preset("intrusion", 42, SimTime::from_ms(200));
  chain.run(emitter_, external_, internal_, SimTime::from_ms(10));
  sim_.run_until();

  std::set<int> stages_seen;
  for (const traffic::Transaction* t : ledger_.all()) {
    ASSERT_TRUE(t->is_attack);
    ASSERT_GE(t->attack_stage, 0);
    ASSERT_LT(t->attack_stage, static_cast<int>(kStageCount));
    stages_seen.insert(t->attack_stage);
  }
  // All four chain stages appear in the ground truth.
  EXPECT_EQ(stages_seen.size(), 4u);
}

TEST_F(KillChainRunTest, LateralStagesPivotOntoCompromisedHosts) {
  const KillChain chain =
      KillChain::preset("intrusion", 42, SimTime::from_ms(200));
  chain.run(emitter_, external_, internal_, SimTime::from_ms(10));
  sim_.run_until();

  // Victims of the compromising stages join the pivot pool: lateral
  // attackers come from the exploit stage's victims, exfil attackers from
  // exploit or lateral victims (the lateral stage compromises too).
  std::set<std::uint32_t> exploit_victims;
  std::set<std::uint32_t> lateral_victims;
  for (const traffic::Transaction* t : ledger_.all()) {
    if (t->attack_stage == static_cast<int>(Stage::kExploit)) {
      exploit_victims.insert(t->tuple.dst_ip.value());
    } else if (t->attack_stage == static_cast<int>(Stage::kLateral)) {
      lateral_victims.insert(t->tuple.dst_ip.value());
    }
  }
  ASSERT_FALSE(exploit_victims.empty());
  std::size_t pivoted = 0;
  for (const traffic::Transaction* t : ledger_.all()) {
    if (t->attack_stage == static_cast<int>(Stage::kLateral)) {
      EXPECT_TRUE(exploit_victims.contains(t->tuple.src_ip.value()))
          << "lateral flow did not pivot";
      ++pivoted;
    } else if (t->attack_stage == static_cast<int>(Stage::kExfil)) {
      EXPECT_TRUE(exploit_victims.contains(t->tuple.src_ip.value()) ||
                  lateral_victims.contains(t->tuple.src_ip.value()))
          << "exfil flow did not pivot";
      ++pivoted;
    }
  }
  EXPECT_GE(pivoted, 2u);
}

TEST_F(KillChainRunTest, SameSeedReplaysIdenticalSchedule) {
  const KillChain chain =
      KillChain::preset("ics-takeover", 7, SimTime::from_ms(150));
  chain.run(emitter_, external_, internal_, SimTime::from_ms(5));
  std::vector<std::pair<SimTime, SimTime>> first;
  for (const auto& launch : chain.last_run()) {
    first.emplace_back(launch.begin, launch.end);
  }

  netsim::Simulator sim2;
  netsim::Network net2(sim2);
  traffic::TransactionLedger ledger2;
  AttackEmitter emitter2(sim2, net2, ledger2, 99);
  for (const Ipv4 addr : internal_) net2.add_host("node", addr);
  for (const Ipv4 addr : external_) net2.add_external_host("ext", addr);
  const KillChain again =
      KillChain::preset("ics-takeover", 7, SimTime::from_ms(150));
  again.run(emitter2, external_, internal_, SimTime::from_ms(5));
  ASSERT_EQ(again.last_run().size(), first.size());
  for (std::size_t s = 0; s < first.size(); ++s) {
    EXPECT_EQ(again.last_run()[s].begin, first[s].first);
    EXPECT_EQ(again.last_run()[s].end, first[s].second);
  }
}

TEST_F(KillChainRunTest, EmptyInternalPoolThrows) {
  const KillChain chain =
      KillChain::preset("intrusion", 1, SimTime::from_ms(100));
  EXPECT_THROW(chain.run(emitter_, external_, {}, SimTime::zero()),
               std::invalid_argument);
}

TEST_F(KillChainRunTest, StageOverrideResetsAfterRun) {
  const KillChain chain =
      KillChain::preset("intrusion", 1, SimTime::from_ms(100));
  chain.run(emitter_, external_, internal_, SimTime::zero());
  EXPECT_EQ(emitter_.stage_override(), -1);
}

}  // namespace
}  // namespace idseval::attack
