#include "attack/emitter.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "attack/patterns.hpp"

namespace idseval::attack {
namespace {

using netsim::Ipv4;
using netsim::Packet;
using netsim::SimTime;

class EmitterTest : public ::testing::Test {
 protected:
  EmitterTest() : net_(sim_), emitter_(sim_, net_, ledger_, 77) {
    victim_ = Ipv4(10, 0, 0, 2);
    attacker_ = Ipv4(198, 51, 100, 1);
    net_.add_host("victim", victim_);
    net_.add_host("other", Ipv4(10, 0, 0, 3));
    net_.add_external_host("attacker", attacker_);
    net_.lan_switch().add_mirror(
        [this](const Packet& p) { seen_.push_back(p); });
  }

  std::vector<Packet> launch(AttackKind kind) {
    emitter_.launch(kind, attacker_, victim_, SimTime::from_ms(10));
    sim_.run_until();
    return seen_;
  }

  netsim::Simulator sim_;
  netsim::Network net_;
  traffic::TransactionLedger ledger_;
  AttackEmitter emitter_;
  Ipv4 victim_;
  Ipv4 attacker_;
  std::vector<Packet> seen_;
};

TEST_F(EmitterTest, PortScanSweepsManyPorts) {
  const auto packets = launch(AttackKind::kPortScan);
  ASSERT_GE(packets.size(), 60u);
  std::set<std::uint16_t> ports;
  for (const auto& p : packets) {
    EXPECT_TRUE(p.flags.syn);
    ports.insert(p.tuple.dst_port);
  }
  EXPECT_GE(ports.size(), 60u);
}

TEST_F(EmitterTest, SynFloodIsHighRateBareSyn) {
  const auto packets = launch(AttackKind::kSynFlood);
  ASSERT_GE(packets.size(), 400u);
  for (const auto& p : packets) {
    EXPECT_TRUE(p.flags.syn);
    EXPECT_FALSE(p.flags.ack);
    EXPECT_EQ(p.tuple.dst_port, netsim::ports::kHttp);
  }
  // Rate: hundreds of SYNs within well under a second.
  const SimTime span =
      packets.back().created - packets.front().created;
  EXPECT_LT(span, SimTime::from_sec(1.0));
}

TEST_F(EmitterTest, BruteForceCarriesFailureBanner) {
  const auto packets = launch(AttackKind::kBruteForceLogin);
  ASSERT_GE(packets.size(), 30u);
  int banners = 0;
  for (const auto& p : packets) {
    EXPECT_EQ(p.tuple.dst_port, netsim::ports::kTelnet);
    if (p.payload_view().find(patterns::kLoginFailed) !=
        std::string::npos) {
      ++banners;
    }
  }
  EXPECT_GE(banners, 30);
}

TEST_F(EmitterTest, WebExploitContainsPublishedPattern) {
  const auto packets = launch(AttackKind::kWebExploit);
  bool found = false;
  for (const auto& p : packets) {
    const auto& payload = p.payload_view();
    if (payload.find(patterns::kDirTraversal) != std::string::npos ||
        payload.find(patterns::kCmdExe) != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(EmitterTest, SmtpWormContainsWormMarkers) {
  const auto packets = launch(AttackKind::kSmtpWorm);
  bool subject = false;
  bool attachment = false;
  for (const auto& p : packets) {
    const auto& payload = p.payload_view();
    if (payload.find(patterns::kWormSubject) != std::string::npos) {
      subject = true;
    }
    if (payload.find(patterns::kWormAttachment) != std::string::npos) {
      attachment = true;
    }
  }
  EXPECT_TRUE(subject);
  EXPECT_TRUE(attachment);
}

TEST_F(EmitterTest, NovelExploitAvoidsPublishedPatterns) {
  const auto packets = launch(AttackKind::kNovelExploit);
  ASSERT_FALSE(packets.empty());
  for (const auto& p : packets) {
    for (const auto pattern : patterns::kPublished) {
      EXPECT_EQ(p.payload_view().find(pattern), std::string::npos)
          << "novel exploit must not contain published pattern";
    }
  }
}

TEST_F(EmitterTest, DnsTunnelUsesLongQueries) {
  const auto packets = launch(AttackKind::kDnsTunnel);
  ASSERT_GE(packets.size(), 25u);
  for (const auto& p : packets) {
    EXPECT_EQ(p.tuple.dst_port, netsim::ports::kDns);
    EXPECT_EQ(p.tuple.proto, netsim::Protocol::kUdp);
    EXPECT_GT(p.payload_bytes(), 60u);  // far beyond a normal DNS query
  }
}

TEST_F(EmitterTest, InsiderProbesAdminServices) {
  emitter_.launch(AttackKind::kInsiderMasquerade, Ipv4(10, 0, 0, 3),
                  victim_, SimTime::from_ms(10));
  sim_.run_until();
  std::set<std::uint16_t> ports;
  for (const auto& p : seen_) {
    EXPECT_TRUE(p.tuple.src_ip.in_subnet(Ipv4(10, 0, 0, 0), 8));
    ports.insert(p.tuple.dst_port);
  }
  EXPECT_GE(ports.size(), 4u);
  EXPECT_TRUE(ports.contains(netsim::ports::kTelnet));
}

TEST_F(EmitterTest, EveryKindRegistersLabeledTransaction) {
  for (const auto& t : all_attack_traits()) {
    const std::uint64_t flow = emitter_.launch(
        t.kind, t.insider ? Ipv4(10, 0, 0, 3) : attacker_, victim_,
        sim_.now() + SimTime::from_ms(1));
    const traffic::Transaction* txn = ledger_.find(flow);
    ASSERT_NE(txn, nullptr) << t.name;
    EXPECT_TRUE(txn->is_attack);
    EXPECT_EQ(txn->attack_kind, static_cast<int>(t.kind));
  }
  sim_.run_until();
  EXPECT_EQ(ledger_.attack_count(), kAttackKindCount);
  EXPECT_EQ(emitter_.stats().attacks_launched, kAttackKindCount);
  // Packets were accounted against the transactions.
  for (const traffic::Transaction* txn : ledger_.attacks()) {
    EXPECT_GT(txn->packets, 0u);
  }
}

TEST_F(EmitterTest, DeterministicAcrossRuns) {
  netsim::Simulator sim2;
  netsim::Network net2(sim2);
  net2.add_host("victim", victim_);
  net2.add_host("other", Ipv4(10, 0, 0, 3));
  net2.add_external_host("attacker", attacker_);
  traffic::TransactionLedger ledger2;
  AttackEmitter emitter2(sim2, net2, ledger2, 77);
  std::vector<Packet> seen2;
  net2.lan_switch().add_mirror(
      [&](const Packet& p) { seen2.push_back(p); });

  emitter_.launch(AttackKind::kPortScan, attacker_, victim_,
                  SimTime::from_ms(5));
  emitter2.launch(AttackKind::kPortScan, attacker_, victim_,
                  SimTime::from_ms(5));
  sim_.run_until();
  sim2.run_until();

  ASSERT_EQ(seen_.size(), seen2.size());
  for (std::size_t i = 0; i < seen_.size(); ++i) {
    EXPECT_EQ(seen_[i].tuple, seen2[i].tuple);
    EXPECT_EQ(seen_[i].created, seen2[i].created);
  }
}

}  // namespace
}  // namespace idseval::attack
