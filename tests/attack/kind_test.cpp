#include "attack/kind.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "attack/patterns.hpp"

namespace idseval::attack {
namespace {

TEST(AttackKindTest, TraitsCoverEveryKind) {
  const auto& all = all_attack_traits();
  EXPECT_EQ(all.size(), kAttackKindCount);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(all[i].kind), i);
  }
}

TEST(AttackKindTest, NamesUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const auto& t : all_attack_traits()) {
    ASSERT_NE(t.name, nullptr);
    EXPECT_FALSE(std::string(t.name).empty());
    EXPECT_TRUE(names.insert(t.name).second) << t.name;
  }
}

TEST(AttackKindTest, SeveritiesInRange) {
  for (const auto& t : all_attack_traits()) {
    EXPECT_GE(t.severity, 1);
    EXPECT_LE(t.severity, 5);
  }
}

TEST(AttackKindTest, NovelAttacksHaveNoSignature) {
  EXPECT_FALSE(traits(AttackKind::kNovelExploit).known_signature);
  EXPECT_FALSE(traits(AttackKind::kDnsTunnel).known_signature);
  EXPECT_FALSE(traits(AttackKind::kInsiderMasquerade).known_signature);
}

TEST(AttackKindTest, KnownAttacksHaveSignature) {
  EXPECT_TRUE(traits(AttackKind::kWebExploit).known_signature);
  EXPECT_TRUE(traits(AttackKind::kSmtpWorm).known_signature);
  EXPECT_TRUE(traits(AttackKind::kPortScan).known_signature);
}

TEST(AttackKindTest, OnlyInsiderIsInsider) {
  for (const auto& t : all_attack_traits()) {
    EXPECT_EQ(t.insider, t.kind == AttackKind::kInsiderMasquerade);
  }
}

TEST(AttackKindTest, EveryAttackDetectableSomehow) {
  // Each kind must manifest on at least one detection surface — an
  // attack invisible to every engine would make the FN floor meaningless.
  for (const auto& t : all_attack_traits()) {
    EXPECT_TRUE(t.known_signature || t.rate_anomalous || t.payload_anomalous)
        << t.name;
  }
}

TEST(AttackKindTest, ToStringAndBadKind) {
  EXPECT_EQ(to_string(AttackKind::kPortScan), "port-scan");
  EXPECT_THROW(traits(AttackKind::kCount), std::invalid_argument);
}

TEST(PatternsTest, PublishedSetExcludesNovelMarker) {
  for (const auto p : patterns::kPublished) {
    EXPECT_EQ(p.find(patterns::kNovelMarker), std::string_view::npos);
  }
}

TEST(PatternsTest, PublishedPatternsNonEmpty) {
  for (const auto p : patterns::kPublished) EXPECT_FALSE(p.empty());
}

}  // namespace
}  // namespace idseval::attack
