#include "attack/scenario.hpp"

#include <gtest/gtest.h>

namespace idseval::attack {
namespace {

using netsim::Ipv4;
using netsim::SimTime;

TEST(ScenarioTest, MixedCoversEveryKind) {
  const Scenario s = Scenario::mixed(3, SimTime::zero(),
                                     SimTime::from_sec(60), 1);
  EXPECT_EQ(s.size(), 3 * kAttackKindCount);
  const auto hist = s.histogram();
  EXPECT_EQ(hist.size(), kAttackKindCount);
  for (const auto& [kind, count] : hist) EXPECT_EQ(count, 3u);
}

TEST(ScenarioTest, StepsSortedByTime) {
  const Scenario s = Scenario::mixed(5, SimTime::zero(),
                                     SimTime::from_sec(60), 2);
  for (std::size_t i = 1; i < s.steps().size(); ++i) {
    EXPECT_LE(s.steps()[i - 1].when, s.steps()[i].when);
  }
}

TEST(ScenarioTest, StepsWithinWindow) {
  const SimTime lo = SimTime::from_sec(10);
  const SimTime hi = SimTime::from_sec(20);
  const Scenario s = Scenario::mixed(4, lo, hi, 3);
  for (const auto& step : s.steps()) {
    EXPECT_GE(step.when, lo);
    EXPECT_LT(step.when, hi);
  }
}

TEST(ScenarioTest, DeterministicForSeed) {
  const Scenario a = Scenario::mixed(2, SimTime::zero(),
                                     SimTime::from_sec(30), 7);
  const Scenario b = Scenario::mixed(2, SimTime::zero(),
                                     SimTime::from_sec(30), 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.steps()[i].when, b.steps()[i].when);
    EXPECT_EQ(a.steps()[i].kind, b.steps()[i].kind);
    EXPECT_EQ(a.steps()[i].attacker_index, b.steps()[i].attacker_index);
  }
}

TEST(ScenarioTest, DifferentSeedsDiffer) {
  const Scenario a = Scenario::mixed(2, SimTime::zero(),
                                     SimTime::from_sec(30), 7);
  const Scenario b = Scenario::mixed(2, SimTime::zero(),
                                     SimTime::from_sec(30), 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.steps()[i].when != b.steps()[i].when) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ScenarioTest, OfKindsRestrictsKinds) {
  const Scenario s = Scenario::of_kinds(
      {AttackKind::kPortScan, AttackKind::kSmtpWorm}, 5, SimTime::zero(),
      SimTime::from_sec(10), 4);
  EXPECT_EQ(s.size(), 10u);
  for (const auto& step : s.steps()) {
    EXPECT_TRUE(step.kind == AttackKind::kPortScan ||
                step.kind == AttackKind::kSmtpWorm);
  }
}

TEST(ScenarioTest, BadWindowThrows) {
  EXPECT_THROW(Scenario::mixed(1, SimTime::from_sec(10),
                               SimTime::from_sec(5), 1),
               std::invalid_argument);
}

TEST(ScenarioTest, RunLaunchesEverything) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  std::vector<Ipv4> internal;
  for (int i = 1; i <= 4; ++i) {
    const Ipv4 addr(10, 0, 0, static_cast<std::uint8_t>(i));
    net.add_host("h" + std::to_string(i), addr);
    internal.push_back(addr);
  }
  const Ipv4 ext(198, 51, 100, 1);
  net.add_external_host("ext", ext);
  traffic::TransactionLedger ledger;
  AttackEmitter emitter(sim, net, ledger, 5);

  const Scenario s = Scenario::mixed(2, SimTime::zero(),
                                     SimTime::from_sec(10), 9);
  const auto flows = s.run(emitter, {ext}, internal);
  EXPECT_EQ(flows.size(), s.size());
  EXPECT_EQ(ledger.attack_count(), s.size());
  sim.run_until();
  EXPECT_GT(emitter.stats().packets_emitted, 0u);
}

TEST(ScenarioTest, InsiderStepsUseInternalAttackers) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  std::vector<Ipv4> internal;
  for (int i = 1; i <= 4; ++i) {
    const Ipv4 addr(10, 0, 0, static_cast<std::uint8_t>(i));
    net.add_host("h" + std::to_string(i), addr);
    internal.push_back(addr);
  }
  const Ipv4 ext(198, 51, 100, 1);
  net.add_external_host("ext", ext);
  traffic::TransactionLedger ledger;
  AttackEmitter emitter(sim, net, ledger, 5);

  const Scenario s = Scenario::of_kinds({AttackKind::kInsiderMasquerade}, 4,
                                        SimTime::zero(),
                                        SimTime::from_sec(5), 11);
  s.run(emitter, {ext}, internal);
  for (const traffic::Transaction* t : ledger.attacks()) {
    EXPECT_TRUE(t->tuple.src_ip.in_subnet(Ipv4(10, 0, 0, 0), 8));
    EXPECT_NE(t->tuple.src_ip, t->tuple.dst_ip);
  }
}

TEST(ScenarioTest, RunWithoutHostsThrows) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  traffic::TransactionLedger ledger;
  AttackEmitter emitter(sim, net, ledger, 5);
  const Scenario s = Scenario::mixed(1, SimTime::zero(),
                                     SimTime::from_sec(5), 1);
  EXPECT_THROW(s.run(emitter, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace idseval::attack
