// Probe-telemetry accumulation (harness.probes and load-probe stage
// counters): every load measurement that is handed a Registry must
// record one harness.probes bump per probe simulation and fold the
// probes' stage telemetry into the accumulator — including probes that
// ran on thread-pool workers, which never inherit an ambient registry.
#include "harness/measure.hpp"

#include <gtest/gtest.h>

#include "harness/evaluate.hpp"
#include "telemetry/registry.hpp"

namespace idseval::harness {
namespace {

using netsim::SimTime;

TestbedConfig tiny_env() {
  TestbedConfig env;
  env.profile = traffic::rt_cluster_profile();
  env.internal_hosts = 4;
  env.external_hosts = 2;
  env.seed = 23;
  env.warmup = SimTime::from_sec(4);
  env.measure = SimTime::from_sec(8);
  env.drain = SimTime::from_sec(2);
  return env;
}

std::uint64_t probes(const telemetry::Registry& reg) {
  const telemetry::Counter* c =
      reg.find_counter(telemetry::names::kHarnessProbes);
  return c != nullptr ? c->value() : 0;
}

TEST(ProbeTelemetryTest, LoadSweepCountsOneProbePerRatePoint) {
  const auto& model = products::product(products::ProductId::kSentryNid);
  telemetry::Registry reg;
  RunContext ctx(&reg);
  const auto points =
      load_sweep(tiny_env(), model, 0.5, {1.0, 2.0, 4.0}, &ctx);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(probes(reg), 3u);
  // Pool workers have no ambient registry; the accumulator must still
  // have received the probes' stage traffic.
  const telemetry::Counter* offered =
      reg.find_counter(telemetry::names::kSensorOffered);
  ASSERT_NE(offered, nullptr);
  EXPECT_GT(offered->value(), 0u);
}

TEST(ProbeTelemetryTest, InducedLatencyCountsBothSimulations) {
  const auto& model = products::product(products::ProductId::kSentryNid);
  telemetry::Registry reg;
  RunContext ctx(&reg);
  const double latency =
      measure_induced_latency_sec(tiny_env(), model, 0.5, &ctx);
  EXPECT_GE(latency, 0.0);
  // Product run plus no-IDS baseline.
  EXPECT_EQ(probes(reg), 2u);
}

TEST(ProbeTelemetryTest, LethalDoseSearchAccumulatesSequentially) {
  const auto& model = products::product(products::ProductId::kSentryNid);
  telemetry::Registry reg;
  RunContext ctx(&reg);
  // Scales 2.0 and 3.2 fit under max_scale 4.0: two probes.
  const auto dose = measure_lethal_dose_pps(tiny_env(), model, 0.5,
                                            /*max_scale=*/4.0, &ctx);
  EXPECT_FALSE(dose.has_value());
  EXPECT_EQ(probes(reg), 2u);
}

TEST(ProbeTelemetryTest, NullAccumulatorKeepsAmbientBehaviour) {
  const auto& model = products::product(products::ProductId::kSentryNid);
  telemetry::Registry ambient;
  telemetry::ScopedRegistry scope(&ambient);
  // Sequential search with no accumulator records into the ambient
  // registry, exactly as before the accumulator existed.
  (void)measure_lethal_dose_pps(tiny_env(), model, 0.5, /*max_scale=*/4.0,
                                nullptr);
  EXPECT_EQ(probes(ambient), 2u);
}

TEST(ProbeTelemetryTest, SkippedLoadMetricsLeaveRegistryEmpty) {
  const auto& model = products::product(products::ProductId::kSentryNid);
  EvaluationOptions options;
  options.attacks_per_kind = 1;
  options.include_load_metrics = false;
  const Evaluation eval = evaluate_product(tiny_env(), model, options);
  EXPECT_TRUE(eval.measured.load_probe_telemetry.empty());
}

}  // namespace
}  // namespace idseval::harness
