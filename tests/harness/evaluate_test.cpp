#include "harness/evaluate.hpp"

#include <gtest/gtest.h>

#include "core/catalog.hpp"

namespace idseval::harness {
namespace {

using core::MetricId;
using netsim::SimTime;

TestbedConfig quick_env() {
  TestbedConfig env;
  env.profile = traffic::rt_cluster_profile();
  env.internal_hosts = 6;
  env.external_hosts = 3;
  env.seed = 31;
  env.warmup = SimTime::from_sec(8);
  env.measure = SimTime::from_sec(20);
  env.drain = SimTime::from_sec(3);
  return env;
}

EvaluationOptions quick_options() {
  EvaluationOptions opt;
  opt.sensitivity = 0.5;
  opt.attacks_per_kind = 2;
  opt.include_load_metrics = false;  // keep unit tests fast
  return opt;
}

TEST(EvaluateTest, MeasuredMetricsFillTheScorecard) {
  const auto& model =
      products::product(products::ProductId::kGuardSecure);
  const Evaluation eval =
      evaluate_product(quick_env(), model, quick_options());

  // All detection-run metrics must be scored with measurement notes.
  for (const auto id :
       {MetricId::kObservedFalseNegativeRatio,
        MetricId::kObservedFalsePositiveRatio, MetricId::kTimeliness,
        MetricId::kOperationalPerformanceImpact, MetricId::kDataStorage}) {
    ASSERT_TRUE(eval.card.has(id)) << core::to_string(id);
    EXPECT_FALSE(eval.card.at(id).note.empty());
  }
  // Load metrics were skipped.
  EXPECT_FALSE(eval.card.has(MetricId::kMaxThroughputZeroLoss));
  EXPECT_FALSE(eval.card.has(MetricId::kNetworkLethalDose));
}

TEST(EvaluateTest, SignatureProductScoresPoorlyOnFnWellOnFp) {
  const auto& model =
      products::product(products::ProductId::kSentryNid);
  const Evaluation eval =
      evaluate_product(quick_env(), model, quick_options());
  // Misses all novel/insider kinds (3 of 8) -> clearly below perfect.
  EXPECT_LE(
      eval.card.at(MetricId::kObservedFalseNegativeRatio).score.value(), 3);
  // Near-zero false alarms -> top FP score.
  EXPECT_GE(
      eval.card.at(MetricId::kObservedFalsePositiveRatio).score.value(), 3);
}

TEST(EvaluateTest, HybridAgentsScoreWellOnFnPoorlyOnImpact) {
  const auto& model =
      products::product(products::ProductId::kAgentSwarm);
  const Evaluation eval =
      evaluate_product(quick_env(), model, quick_options());
  EXPECT_GE(
      eval.card.at(MetricId::kObservedFalseNegativeRatio).score.value(), 3);
  // C2 auditing on production hosts costs real CPU.
  EXPECT_LE(
      eval.card.at(MetricId::kOperationalPerformanceImpact).score.value(),
      3);
}

TEST(EvaluateTest, FirewallEffectivenessOverridesCapability) {
  // GuardSecure claims blocking; when the lab observes actual automatic
  // blocks the score is 4, otherwise downgraded to 2. Either way the note
  // records the evidence.
  const auto& model =
      products::product(products::ProductId::kGuardSecure);
  const Evaluation eval =
      evaluate_product(quick_env(), model, quick_options());
  const auto& entry = eval.card.at(MetricId::kFirewallInteraction);
  if (eval.measured.detection_run.firewall_blocks > 0) {
    EXPECT_EQ(entry.score.value(), 4);
  } else {
    EXPECT_EQ(entry.score.value(), 2);
  }
  EXPECT_FALSE(entry.note.empty());
}

TEST(EvaluateTest, MeasurementsRetained) {
  const auto& model =
      products::product(products::ProductId::kSentryNid);
  const Evaluation eval =
      evaluate_product(quick_env(), model, quick_options());
  EXPECT_GT(eval.measured.detection_run.transactions, 0u);
  EXPECT_EQ(eval.measured.detection_run.product, "SentryNID");
}

TEST(EvaluateTest, WithLoadMetricsScoresThroughputFamily) {
  // One slower full evaluation to cover the load-metric path.
  TestbedConfig env = quick_env();
  const auto& model =
      products::product(products::ProductId::kSentryNid);
  EvaluationOptions opt = quick_options();
  opt.include_load_metrics = true;
  const Evaluation eval = evaluate_product(env, model, opt);
  for (const auto id :
       {MetricId::kMaxThroughputZeroLoss, MetricId::kSystemThroughput,
        MetricId::kNetworkLethalDose, MetricId::kInducedTrafficLatency}) {
    EXPECT_TRUE(eval.card.has(id)) << core::to_string(id);
  }
  EXPECT_GT(eval.measured.zero_loss_pps, 0.0);
  EXPECT_GT(eval.measured.system_throughput_pps, 0.0);
  // Every probe simulation the searches ran is accounted in the
  // accumulated load-probe telemetry.
  ASSERT_FALSE(eval.measured.load_probe_telemetry.empty());
  const telemetry::Counter* probes =
      eval.measured.load_probe_telemetry.find_counter(
          telemetry::names::kHarnessProbes);
  ASSERT_NE(probes, nullptr);
  EXPECT_GT(probes->value(), 0u);
}

}  // namespace
}  // namespace idseval::harness
