#include "harness/measure.hpp"

#include <gtest/gtest.h>

namespace idseval::harness {
namespace {

using netsim::SimTime;

TestbedConfig quick_env() {
  TestbedConfig env;
  env.profile = traffic::rt_cluster_profile();
  env.internal_hosts = 6;
  env.external_hosts = 3;
  env.seed = 17;
  env.warmup = SimTime::from_sec(6);
  env.measure = SimTime::from_sec(15);
  env.drain = SimTime::from_sec(2);
  return env;
}

TEST(EqualErrorRateTest, FindsCrossing) {
  std::vector<ErrorRatePoint> sweep(3);
  sweep[0] = {0.0, 0.0, 0.0, 0.0, 40.0};
  sweep[1] = {0.5, 0.0, 0.0, 10.0, 20.0};
  sweep[2] = {1.0, 0.0, 0.0, 30.0, 0.0};
  const EqualErrorRate eer = equal_error_rate(sweep);
  ASSERT_TRUE(eer.found);
  // Between s=0.5 (diff +10) and s=1.0 (diff -30): crossing at t=0.25.
  EXPECT_NEAR(eer.sensitivity, 0.625, 1e-9);
  EXPECT_NEAR(eer.error_percent, 15.0, 1e-9);
}

TEST(EqualErrorRateTest, NoCrossingReportsNotFound) {
  std::vector<ErrorRatePoint> sweep(2);
  sweep[0] = {0.0, 0, 0, 1.0, 50.0};
  sweep[1] = {1.0, 0, 0, 2.0, 40.0};  // FN always above FP
  EXPECT_FALSE(equal_error_rate(sweep).found);
}

TEST(EqualErrorRateTest, ExactTouchFound) {
  std::vector<ErrorRatePoint> sweep(2);
  sweep[0] = {0.0, 0, 0, 10.0, 10.0};  // equal at the first point
  sweep[1] = {1.0, 0, 0, 30.0, 0.0};
  const EqualErrorRate eer = equal_error_rate(sweep);
  EXPECT_TRUE(eer.found);
  EXPECT_NEAR(eer.sensitivity, 0.0, 1e-9);
}

TEST(MeasureTest, LoadSweepMonotoneOffered) {
  const auto& model =
      products::product(products::ProductId::kSentryNid);
  const auto points =
      load_sweep(quick_env(), model, 0.5, {1.0, 4.0, 12.0});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].offered_pps, points[1].offered_pps);
  EXPECT_LT(points[1].offered_pps, points[2].offered_pps);
  for (const auto& p : points) {
    EXPECT_GE(p.loss_ratio, 0.0);
    EXPECT_LE(p.loss_ratio, 1.0);
  }
}

TEST(MeasureTest, ZeroLossBelowSaturationKnee) {
  // A sensor with tiny capacity must report a low zero-loss rate; the
  // same pipeline with a fast sensor reports a higher one.
  products::ProductModel slow =
      products::product(products::ProductId::kSentryNid);
  slow.make_config = [](double s) {
    auto c = products::product(products::ProductId::kSentryNid)
                 .make_config(s);
    c.sensor.ops_per_sec = 2e6;  // ~hundreds of pps
    return c;
  };
  const double slow_pps =
      measure_zero_loss_pps(quick_env(), slow, 0.5, 16.0, 1e-4, 4);

  products::ProductModel fast = slow;
  fast.make_config = [](double s) {
    auto c = products::product(products::ProductId::kSentryNid)
                 .make_config(s);
    c.sensor.ops_per_sec = 6e8;
    return c;
  };
  const double fast_pps =
      measure_zero_loss_pps(quick_env(), fast, 0.5, 16.0, 1e-4, 4);
  EXPECT_GT(fast_pps, 2.0 * slow_pps);
}

TEST(MeasureTest, LethalDoseFoundForFragileSensor) {
  products::ProductModel fragile =
      products::product(products::ProductId::kSentryNid);
  fragile.make_config = [](double s) {
    auto c = products::product(products::ProductId::kSentryNid)
                 .make_config(s);
    c.sensor.ops_per_sec = 2e6;
    c.sensor.queue_capacity = 64;
    c.sensor.overload_tolerance = netsim::SimTime::from_ms(100);
    return c;
  };
  const auto dose = measure_lethal_dose_pps(quick_env(), fragile, 0.5, 16.0);
  ASSERT_TRUE(dose.has_value());
  EXPECT_GT(*dose, 0.0);
}

TEST(MeasureTest, NoLethalDoseForRobustSensor) {
  const auto& model =
      products::product(products::ProductId::kSentryNid);
  // Up to a modest max scale the stock product should not die.
  const auto dose = measure_lethal_dose_pps(quick_env(), model, 0.5, 4.0);
  EXPECT_FALSE(dose.has_value());
}

TEST(MeasureTest, InlineProductInducesMoreLatencyThanPassive) {
  const auto& passive =
      products::product(products::ProductId::kSentryNid);
  const auto& inline_product =
      products::product(products::ProductId::kFlowHunt);
  const double passive_latency =
      measure_induced_latency_sec(quick_env(), passive, 0.5);
  const double inline_latency =
      measure_induced_latency_sec(quick_env(), inline_product, 0.5);
  EXPECT_LT(passive_latency, 20e-6);   // mirror: negligible
  EXPECT_GT(inline_latency, 50e-6);    // in-line LB store-and-forward
}

TEST(MeasureTest, SensitivitySweepShapes) {
  const auto& model =
      products::product(products::ProductId::kAgentSwarm);
  const auto sweep =
      sensitivity_sweep(quick_env(), model, {0.1, 0.9}, 2, 2);
  ASSERT_EQ(sweep.size(), 2u);
  // Type I rises with sensitivity; Type II does not rise.
  EXPECT_LE(sweep[0].fp_percent_of_benign, sweep[1].fp_percent_of_benign);
  EXPECT_GE(sweep[0].fn_percent_of_attacks, sweep[1].fn_percent_of_attacks);
  for (const auto& p : sweep) {
    EXPECT_GE(p.fp_ratio, 0.0);
    EXPECT_LE(p.fp_ratio, 1.0);
    EXPECT_GE(p.fn_ratio, 0.0);
    EXPECT_LE(p.fn_ratio, 1.0);
  }
}

}  // namespace
}  // namespace idseval::harness
