// Golden-hash regression test for bit-reproducibility (§1's scientific
// repeatability requirement): a fixed-seed testbed run must replay
// byte-identically — every packet on the LAN mirror and every field of
// the RunResult. The expected constant is stored HERE, not derived from
// old code, so any change to event ordering, RNG draw sequences, or
// payload synthesis shows up as a hash mismatch.
//
// Baseline history: the constant was re-baselined when PayloadPool
// landed — interning payloads by (family, variant) intentionally changed
// RNG draw sequences relative to per-packet synthesize() (the event-core
// InlineCallback swap alone was verified byte-identical against the
// prior constant 0x1f46acd1224b09c3 before that; that pool baseline was
// 0xd00ebdec0cde9ddf). Re-baselined once more when bucket_len switched
// from round-up to round-to-nearest so pooled lengths keep the profile's
// mean bytes/packet instead of inflating every payload (that baseline
// was 0x8ebff14e691bfd72). Re-baselined again when the sharded engine
// landed: link deliveries now carry a per-link lane in the event key
// (canonical same-tick ordering that holds on one heap or N), host-agent
// operator reports travel over an explicit report-latency channel
// instead of firing synchronously inside the sensor event, and delivery
// latency is accumulated per host and merged in host order. All three
// apply identically at every shard count — the tests below pin that the
// hash is byte-identical at 1, 2, and 4 shards.
#include <bit>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "attack/killchain.hpp"
#include "attack/scenario.hpp"
#include "harness/testbed.hpp"
#include "products/catalog.hpp"
#include "traffic/profile.hpp"
#include "util/rng.hpp"

namespace idseval::harness {
namespace {

using netsim::SimTime;

/// The expected digest of the golden run. Update ONLY for a deliberate,
/// documented behavior change; note the reason above when you do.
constexpr std::uint64_t kGoldenHash = 0x128098acff3bee4eULL;

// FNV-1a over a running byte stream.
struct StreamHash {
  std::uint64_t h = 1469598103934665603ULL;
  void bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void u64(std::uint64_t v) noexcept { bytes(&v, sizeof(v)); }
  void i64(std::int64_t v) noexcept { bytes(&v, sizeof(v)); }
  void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) noexcept {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

TestbedConfig golden_config() {
  TestbedConfig cfg;
  cfg.profile = traffic::rt_cluster_profile();
  cfg.internal_hosts = 6;
  cfg.external_hosts = 3;
  cfg.seed = 20260805;
  cfg.warmup = SimTime::from_sec(6);
  cfg.measure = SimTime::from_sec(20);
  cfg.drain = SimTime::from_sec(2);
  return cfg;
}

void hash_packet(StreamHash& sh, const netsim::Packet& p) {
  sh.u64(p.id);
  sh.u64(p.flow_id);
  sh.i64(p.created.ns());
  sh.u64(p.tuple.src_ip.value());
  sh.u64(p.tuple.dst_ip.value());
  sh.u64(p.tuple.src_port);
  sh.u64(p.tuple.dst_port);
  sh.u64(static_cast<std::uint64_t>(p.tuple.proto));
  sh.u64((p.flags.syn ? 1u : 0u) | (p.flags.ack ? 2u : 0u) |
         (p.flags.fin ? 4u : 0u) | (p.flags.rst ? 8u : 0u));
  sh.u64(p.seq);
  sh.u64(p.header_bytes);
  sh.str(p.payload_view());
}

void hash_result(StreamHash& sh, const RunResult& r) {
  sh.str(r.product);
  sh.f64(r.sensitivity);
  sh.u64(r.transactions);
  sh.u64(r.attacks);
  sh.u64(r.detected);
  sh.u64(r.true_detections);
  sh.u64(r.false_alarms);
  sh.u64(r.missed_attacks);
  sh.u64(r.prevented_attacks);
  sh.f64(r.fp_ratio);
  sh.f64(r.fn_ratio);
  sh.f64(r.timeliness_mean_sec);
  sh.f64(r.timeliness_max_sec);
  sh.f64(r.offered_pps);
  sh.f64(r.tapped_pps);
  sh.f64(r.processed_pps);
  sh.f64(r.ids_loss_ratio);
  sh.u64(r.sensor_failures);
  sh.u64(r.peak_concurrent_streams);
  sh.u64(r.total_streams);
  sh.f64(r.mean_delivery_latency_sec);
  sh.f64(r.p99_delivery_latency_sec);
  sh.f64(r.max_host_ids_cpu);
  sh.f64(r.mean_host_ids_cpu);
  sh.f64(r.storage_bytes_per_mb);
  sh.u64(r.firewall_blocks);
  sh.u64(r.snmp_traps);
  sh.u64(r.alerts_raised);
  sh.u64(r.post_block_attacks_suppressed);
  sh.u64(r.post_block_benign_collateral);
  for (const auto& [kind, outcome] : r.per_kind) {
    sh.u64(static_cast<std::uint64_t>(kind));
    sh.u64(outcome.launched);
    sh.u64(outcome.detected);
    sh.u64(outcome.prevented);
  }
}

struct GoldenOptions {
  bool coalesce_delivery = true;
  std::size_t shards = 1;
  /// -1 = engine default (threaded iff >1 hardware thread or
  /// IDSEVAL_SHARD_THREADS=1), 0 = force sequential, 1 = force threaded.
  int threaded = -1;
  bool scan_cache = true;
};

std::uint64_t golden_run_hash(GoldenOptions opt = {}) {
  TestbedConfig cfg = golden_config();
  cfg.shards = opt.shards;
  cfg.scan_cache = opt.scan_cache;
  const auto& model = products::product(products::ProductId::kGuardSecure);
  Testbed bed(cfg, &model, 0.5);
  if (opt.threaded >= 0) bed.engine().set_threaded(opt.threaded == 1);
  bed.net().set_delivery_coalescing(opt.coalesce_delivery);
  StreamHash sh;
  bed.net().lan_switch().add_mirror(
      [&sh](const netsim::Packet& p) { hash_packet(sh, p); });
  const auto scenario = attack::Scenario::mixed(
      2, SimTime::zero(), cfg.measure * 0.9,
      util::hash64("golden") ^ cfg.seed, cfg.external_hosts,
      cfg.internal_hosts);
  const RunResult r = bed.run(scenario);
  hash_result(sh, r);
  return sh.h;
}

TEST(DeterminismTest, GoldenRunMatchesStoredHash) {
  const std::uint64_t h = golden_run_hash();
  EXPECT_EQ(h, kGoldenHash)
      << "golden run hash drifted: got 0x" << std::hex << h
      << " — a fixed-seed run is no longer byte-identical to the "
         "baselined behavior. If the change is deliberate, re-baseline "
         "kGoldenHash and document why.";
}

TEST(DeterminismTest, BackToBackRunsAreIdentical) {
  EXPECT_EQ(golden_run_hash(), golden_run_hash());
}

TEST(DeterminismTest, ScanCacheOffReproducesTheGoldenHash) {
  // The interned-payload scan cache must be an optimization, not a
  // behavior change: replaying the legacy full-rescan path (entropy per
  // packet, full tail||payload automaton scans) produces the exact same
  // bytes as the memoized + boundary-limited path the default uses.
  EXPECT_EQ(golden_run_hash({.scan_cache = false}), kGoldenHash);
}

TEST(DeterminismTest, CoalescingOffReproducesTheGoldenHash) {
  // The batched delivery path must be an optimization, not a behavior
  // change: forcing every packet into its own delivery group (the
  // single-packet reference path) replays the exact same bytes.
  EXPECT_EQ(golden_run_hash({.coalesce_delivery = false}), kGoldenHash);
}

// Sharded execution must be an optimization, not a behavior change: the
// same run partitioned over 2 or 4 event queues — cross-shard deliveries
// crossing mailboxes at conservative-lookahead barriers — replays the
// exact same bytes the single-queue engine produces. The (when, lane,
// seq) injection order and the shard-order merges of per-host / per-shard
// state are what make this hold.
TEST(DeterminismTest, TwoShardsReproduceTheGoldenHash) {
  EXPECT_EQ(golden_run_hash({.shards = 2}), kGoldenHash);
}

TEST(DeterminismTest, FourShardsReproduceTheGoldenHash) {
  EXPECT_EQ(golden_run_hash({.shards = 4}), kGoldenHash);
}

TEST(DeterminismTest, ThreadedAndSequentialShardsAreIdentical) {
  // The worker threads run the exact same per-shard work the sequential
  // round-robin runs; the barrier protocol means neither order can see
  // the other's in-window state.
  EXPECT_EQ(golden_run_hash({.shards = 3, .threaded = 1}),
            golden_run_hash({.shards = 3, .threaded = 0}));
}

// The golden scenario wrapped in a one-stage kill chain. singleton()
// chains must degrade to the exact legacy Scenario::run path — same RNG
// draws, same bytes, same hash — so configurations that never opt into
// campaigns cannot drift when the campaign machinery evolves.
TEST(DeterminismTest, SingletonKillChainReproducesTheGoldenHash) {
  TestbedConfig cfg = golden_config();
  const auto& model = products::product(products::ProductId::kGuardSecure);
  Testbed bed(cfg, &model, 0.5);
  StreamHash sh;
  bed.net().lan_switch().add_mirror(
      [&sh](const netsim::Packet& p) { hash_packet(sh, p); });
  const auto scenario = attack::Scenario::mixed(
      2, SimTime::zero(), cfg.measure * 0.9,
      util::hash64("golden") ^ cfg.seed, cfg.external_hosts,
      cfg.internal_hosts);
  attack::KillChain chain("golden-wrapper");
  attack::ChainStage stage;
  stage.steps = scenario.steps();
  chain.add_stage(std::move(stage));
  const RunResult r = bed.run(chain);
  hash_result(sh, r);
  EXPECT_EQ(sh.h, kGoldenHash);
}

std::uint64_t chain_run_hash(std::size_t shards) {
  TestbedConfig cfg = golden_config();
  cfg.shards = shards;
  const auto& model = products::product(products::ProductId::kGuardSecure);
  Testbed bed(cfg, &model, 0.5);
  StreamHash sh;
  bed.net().lan_switch().add_mirror(
      [&sh](const netsim::Packet& p) { hash_packet(sh, p); });
  const auto chain = attack::KillChain::preset(
      "intrusion", util::hash64("chain") ^ cfg.seed, cfg.measure * 0.08,
      cfg.external_hosts, cfg.internal_hosts);
  const RunResult r = bed.run(chain);
  hash_result(sh, r);
  return sh.h;
}

TEST(DeterminismTest, KillChainRunsAreReproducible) {
  // Multi-stage campaigns schedule dynamically (stage k+1 launches off
  // stage k's emission end), but one seed must still fully determine the
  // run: back-to-back replays are byte-identical.
  EXPECT_EQ(chain_run_hash(1), chain_run_hash(1));
}

TEST(DeterminismTest, KillChainHashIsShardInvariant) {
  // Staged launches ride the same (when, lane, seq) event keys as
  // everything else, so partitioning the chain run over 2 or 4 event
  // queues replays the exact same bytes.
  const std::uint64_t base = chain_run_hash(1);
  EXPECT_EQ(chain_run_hash(2), base);
  EXPECT_EQ(chain_run_hash(4), base);
}

}  // namespace
}  // namespace idseval::harness
