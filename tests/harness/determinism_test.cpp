// Golden-hash regression test for bit-reproducibility (§1's scientific
// repeatability requirement): a fixed-seed testbed run must replay
// byte-identically — every packet on the LAN mirror and every field of
// the RunResult. The expected constant is stored HERE, not derived from
// old code, so any change to event ordering, RNG draw sequences, or
// payload synthesis shows up as a hash mismatch.
//
// Baseline history: the constant was re-baselined when PayloadPool
// landed — interning payloads by (family, variant) intentionally changed
// RNG draw sequences relative to per-packet synthesize() (the event-core
// InlineCallback swap alone was verified byte-identical against the
// prior constant 0x1f46acd1224b09c3 before that; that pool baseline was
// 0xd00ebdec0cde9ddf). Re-baselined once more when bucket_len switched
// from round-up to round-to-nearest so pooled lengths keep the profile's
// mean bytes/packet instead of inflating every payload.
#include <bit>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "attack/scenario.hpp"
#include "harness/testbed.hpp"
#include "products/catalog.hpp"
#include "traffic/profile.hpp"
#include "util/rng.hpp"

namespace idseval::harness {
namespace {

using netsim::SimTime;

/// The expected digest of the golden run. Update ONLY for a deliberate,
/// documented behavior change; note the reason above when you do.
constexpr std::uint64_t kGoldenHash = 0x8ebff14e691bfd72ULL;

// FNV-1a over a running byte stream.
struct StreamHash {
  std::uint64_t h = 1469598103934665603ULL;
  void bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void u64(std::uint64_t v) noexcept { bytes(&v, sizeof(v)); }
  void i64(std::int64_t v) noexcept { bytes(&v, sizeof(v)); }
  void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) noexcept {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

TestbedConfig golden_config() {
  TestbedConfig cfg;
  cfg.profile = traffic::rt_cluster_profile();
  cfg.internal_hosts = 6;
  cfg.external_hosts = 3;
  cfg.seed = 20260805;
  cfg.warmup = SimTime::from_sec(6);
  cfg.measure = SimTime::from_sec(20);
  cfg.drain = SimTime::from_sec(2);
  return cfg;
}

void hash_packet(StreamHash& sh, const netsim::Packet& p) {
  sh.u64(p.id);
  sh.u64(p.flow_id);
  sh.i64(p.created.ns());
  sh.u64(p.tuple.src_ip.value());
  sh.u64(p.tuple.dst_ip.value());
  sh.u64(p.tuple.src_port);
  sh.u64(p.tuple.dst_port);
  sh.u64(static_cast<std::uint64_t>(p.tuple.proto));
  sh.u64((p.flags.syn ? 1u : 0u) | (p.flags.ack ? 2u : 0u) |
         (p.flags.fin ? 4u : 0u) | (p.flags.rst ? 8u : 0u));
  sh.u64(p.seq);
  sh.u64(p.header_bytes);
  sh.str(p.payload_view());
}

void hash_result(StreamHash& sh, const RunResult& r) {
  sh.str(r.product);
  sh.f64(r.sensitivity);
  sh.u64(r.transactions);
  sh.u64(r.attacks);
  sh.u64(r.detected);
  sh.u64(r.true_detections);
  sh.u64(r.false_alarms);
  sh.u64(r.missed_attacks);
  sh.u64(r.prevented_attacks);
  sh.f64(r.fp_ratio);
  sh.f64(r.fn_ratio);
  sh.f64(r.timeliness_mean_sec);
  sh.f64(r.timeliness_max_sec);
  sh.f64(r.offered_pps);
  sh.f64(r.tapped_pps);
  sh.f64(r.processed_pps);
  sh.f64(r.ids_loss_ratio);
  sh.u64(r.sensor_failures);
  sh.u64(r.peak_concurrent_streams);
  sh.u64(r.total_streams);
  sh.f64(r.mean_delivery_latency_sec);
  sh.f64(r.p99_delivery_latency_sec);
  sh.f64(r.max_host_ids_cpu);
  sh.f64(r.mean_host_ids_cpu);
  sh.f64(r.storage_bytes_per_mb);
  sh.u64(r.firewall_blocks);
  sh.u64(r.snmp_traps);
  sh.u64(r.alerts_raised);
  sh.u64(r.post_block_attacks_suppressed);
  sh.u64(r.post_block_benign_collateral);
  for (const auto& [kind, outcome] : r.per_kind) {
    sh.u64(static_cast<std::uint64_t>(kind));
    sh.u64(outcome.launched);
    sh.u64(outcome.detected);
    sh.u64(outcome.prevented);
  }
}

std::uint64_t golden_run_hash(bool coalesce_delivery = true) {
  const TestbedConfig cfg = golden_config();
  const auto& model = products::product(products::ProductId::kGuardSecure);
  Testbed bed(cfg, &model, 0.5);
  bed.net().set_delivery_coalescing(coalesce_delivery);
  StreamHash sh;
  bed.net().lan_switch().add_mirror(
      [&sh](const netsim::Packet& p) { hash_packet(sh, p); });
  const auto scenario = attack::Scenario::mixed(
      2, SimTime::zero(), cfg.measure * 0.9,
      util::hash64("golden") ^ cfg.seed, cfg.external_hosts,
      cfg.internal_hosts);
  const RunResult r = bed.run(scenario);
  hash_result(sh, r);
  return sh.h;
}

TEST(DeterminismTest, GoldenRunMatchesStoredHash) {
  const std::uint64_t h = golden_run_hash();
  EXPECT_EQ(h, kGoldenHash)
      << "golden run hash drifted: got 0x" << std::hex << h
      << " — a fixed-seed run is no longer byte-identical to the "
         "baselined behavior. If the change is deliberate, re-baseline "
         "kGoldenHash and document why.";
}

TEST(DeterminismTest, BackToBackRunsAreIdentical) {
  EXPECT_EQ(golden_run_hash(), golden_run_hash());
}

TEST(DeterminismTest, CoalescingOffReproducesTheGoldenHash) {
  // The batched delivery path must be an optimization, not a behavior
  // change: forcing every packet into its own delivery group (the
  // single-packet reference path) replays the exact same bytes.
  EXPECT_EQ(golden_run_hash(/*coalesce_delivery=*/false), kGoldenHash);
}

}  // namespace
}  // namespace idseval::harness
