#include "harness/testbed.hpp"

#include <gtest/gtest.h>

namespace idseval::harness {
namespace {

using attack::AttackKind;
using netsim::SimTime;

TestbedConfig quick_env() {
  TestbedConfig env;
  env.profile = traffic::rt_cluster_profile();
  env.internal_hosts = 6;
  env.external_hosts = 3;
  env.seed = 99;
  env.warmup = SimTime::from_sec(8);
  env.measure = SimTime::from_sec(20);
  env.drain = SimTime::from_sec(3);
  return env;
}

TEST(TestbedTest, BaselineRunsWithoutProduct) {
  Testbed bed(quick_env(), nullptr, 0.5);
  const RunResult r = bed.run_clean();
  EXPECT_EQ(r.product, "baseline");
  EXPECT_GT(r.transactions, 0u);
  EXPECT_EQ(r.attacks, 0u);
  EXPECT_EQ(r.detected, 0u);
  EXPECT_GT(r.offered_pps, 0.0);
  EXPECT_GT(r.mean_delivery_latency_sec, 0.0);
  EXPECT_EQ(bed.pipeline(), nullptr);
}

TEST(TestbedTest, AddressPoolsMatchConfig) {
  Testbed bed(quick_env(), nullptr, 0.5);
  EXPECT_EQ(bed.internal_addresses().size(), 6u);
  EXPECT_EQ(bed.external_addresses().size(), 3u);
  for (const auto addr : bed.internal_addresses()) {
    EXPECT_TRUE(addr.in_subnet(netsim::Ipv4(10, 0, 0, 0), 8));
  }
}

TEST(TestbedTest, MixedScenarioProducesConfusionCounts) {
  const auto& model =
      products::product(products::ProductId::kGuardSecure);
  Testbed bed(quick_env(), &model, 0.5);
  const auto scenario = attack::Scenario::mixed(
      2, SimTime::zero(), SimTime::from_sec(18), 7, 3, 6);
  const RunResult r = bed.run(scenario);

  EXPECT_EQ(r.attacks, scenario.size());
  EXPECT_EQ(r.true_detections + r.missed_attacks + r.prevented_attacks,
            r.attacks);
  EXPECT_EQ(r.detected, r.true_detections + r.false_alarms);
  EXPECT_GT(r.transactions, r.attacks);

  // Figure 3 identities.
  const double t = static_cast<double>(r.transactions);
  EXPECT_NEAR(r.fp_ratio, static_cast<double>(r.false_alarms) / t, 1e-12);
  EXPECT_NEAR(r.fn_ratio, static_cast<double>(r.missed_attacks) / t,
              1e-12);

  // Signature product catches the known kinds.
  EXPECT_EQ(r.per_kind.at(AttackKind::kWebExploit).detected,
            r.per_kind.at(AttackKind::kWebExploit).launched);
  EXPECT_EQ(r.per_kind.at(AttackKind::kNovelExploit).detected, 0u);
  EXPECT_GT(r.timeliness_mean_sec, 0.0);
  EXPECT_GE(r.timeliness_max_sec, r.timeliness_mean_sec);
}

TEST(TestbedTest, DeterministicAcrossIdenticalRuns) {
  const auto& model =
      products::product(products::ProductId::kSentryNid);
  const auto scenario = attack::Scenario::mixed(
      2, SimTime::zero(), SimTime::from_sec(18), 5, 3, 6);
  Testbed bed1(quick_env(), &model, 0.5);
  Testbed bed2(quick_env(), &model, 0.5);
  const RunResult a = bed1.run(scenario);
  const RunResult b = bed2.run(scenario);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.true_detections, b.true_detections);
  EXPECT_EQ(a.false_alarms, b.false_alarms);
  EXPECT_DOUBLE_EQ(a.fp_ratio, b.fp_ratio);
  EXPECT_DOUBLE_EQ(a.timeliness_mean_sec, b.timeliness_mean_sec);
}

TEST(TestbedTest, DifferentSeedsDiffer) {
  const auto& model =
      products::product(products::ProductId::kSentryNid);
  TestbedConfig env1 = quick_env();
  TestbedConfig env2 = quick_env();
  env2.seed = 123456;
  Testbed bed1(env1, &model, 0.5);
  Testbed bed2(env2, &model, 0.5);
  const RunResult a = bed1.run_clean();
  const RunResult b = bed2.run_clean();
  EXPECT_NE(a.transactions, b.transactions);
}

TEST(TestbedTest, HostAgentsChargeCpu) {
  const auto& model =
      products::product(products::ProductId::kAgentSwarm);
  Testbed bed(quick_env(), &model, 0.5);
  const RunResult r = bed.run_clean();
  // C2-audit agents on every host must consume visible CPU.
  EXPECT_GT(r.mean_host_ids_cpu, 0.005);
  EXPECT_GE(r.max_host_ids_cpu, r.mean_host_ids_cpu);
}

TEST(TestbedTest, NetworkSensorsDoNotChargeHosts) {
  const auto& model =
      products::product(products::ProductId::kSentryNid);
  Testbed bed(quick_env(), &model, 0.5);
  const RunResult r = bed.run_clean();
  EXPECT_DOUBLE_EQ(r.max_host_ids_cpu, 0.0);
}

TEST(TestbedTest, FirewallBlocksObservedForCapableProduct) {
  const auto& model =
      products::product(products::ProductId::kGuardSecure);
  Testbed bed(quick_env(), &model, 0.6);
  // Several critical (severity 5) NOP-sled exploits trigger block policy.
  const auto scenario = attack::Scenario::of_kinds(
      {AttackKind::kWebExploit, AttackKind::kSmtpWorm}, 4, SimTime::zero(),
      SimTime::from_sec(15), 21, 3, 6);
  const RunResult r = bed.run(scenario);
  EXPECT_GT(r.alerts_raised, 0u);
  // SNMP traps fire for severity>=4 alerts on this product.
  EXPECT_GT(r.snmp_traps, 0u);
}

TEST(TestbedTest, StorageMeasured) {
  const auto& model =
      products::product(products::ProductId::kGuardSecure);
  Testbed bed(quick_env(), &model, 0.7);
  const auto scenario = attack::Scenario::mixed(
      2, SimTime::zero(), SimTime::from_sec(15), 3, 3, 6);
  const RunResult r = bed.run(scenario);
  EXPECT_GT(r.storage_bytes_per_mb, 0.0);
}

}  // namespace
}  // namespace idseval::harness
