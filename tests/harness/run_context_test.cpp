#include "harness/run_context.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace idseval::harness {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(RunContextTest, OwnsARegistryByDefault) {
  RunContext ctx;
  ctx.registry().counter("sensor.offered").increment(3);
  EXPECT_EQ(ctx.registry().find_counter("sensor.offered")->value(), 3u);
  EXPECT_EQ(ctx.trace(), nullptr);
  ctx.emit(results::Doc::object());  // no sink: must be a safe no-op
  ctx.flush_trace();
}

TEST(RunContextTest, RecordsIntoExternalRegistryWhenGiven) {
  telemetry::Registry external;
  RunContext ctx(&external);
  ctx.registry().counter("harness.probes").increment();
  EXPECT_EQ(external.find_counter("harness.probes")->value(), 1u);
}

TEST(RunContextTest, NullExternalRegistryFallsBackToOwned) {
  RunContext ctx(static_cast<telemetry::Registry*>(nullptr));
  ctx.registry().counter("x").increment();
  EXPECT_EQ(ctx.registry().find_counter("x")->value(), 1u);
}

TEST(RunContextTest, ScopeInstallsRegistryForAmbientRecording) {
  RunContext ctx;
  EXPECT_EQ(telemetry::current(), nullptr);
  {
    RunContext::Scope scope(ctx);
    EXPECT_EQ(telemetry::current(), &ctx.registry());
    telemetry::count("pipeline.tapped", 5);
  }
  EXPECT_EQ(telemetry::current(), nullptr);
  EXPECT_EQ(ctx.registry().find_counter("pipeline.tapped")->value(), 5u);
}

TEST(RunContextTest, ScopesNestAndRestore) {
  RunContext outer;
  RunContext inner;
  RunContext::Scope a(outer);
  {
    RunContext::Scope b(inner);
    EXPECT_EQ(telemetry::current(), &inner.registry());
  }
  EXPECT_EQ(telemetry::current(), &outer.registry());
}

TEST(RunContextTest, EmitsEventsToTheTraceSink) {
  const std::string path = temp_path("idseval_run_context_trace.jsonl");
  {
    telemetry::TraceSink sink(path);
    RunContext ctx(&sink);
    ctx.registry().counter("pipeline.tapped").increment(2);
    ctx.emit(evaluation_event("GuardSecure", "rt_cluster", 42,
                              ctx.registry()));
    ctx.flush_trace();
    sink.close();
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);  // event + trace_summary footer
  const results::Doc event = results::parse_json(lines[0]);
  EXPECT_EQ(event.find("type")->as_string(), "evaluation");
  EXPECT_EQ(event.find("product")->as_string(), "GuardSecure");
  EXPECT_EQ(event.find("profile")->as_string(), "rt_cluster");
  EXPECT_EQ(event.find("seed")->as_u64(), 42u);
  ASSERT_NE(event.find("telemetry"), nullptr);
  std::remove(path.c_str());
}

TEST(RunContextTest, LoadProbesEventCarriesTelemetry) {
  telemetry::Registry reg;
  reg.counter("harness.probes").increment(7);
  const results::Doc event =
      load_probes_event("NetWatch", "office", 9, reg);
  EXPECT_EQ(event.find("type")->as_string(), "load_probes");
  const results::Doc* telem = event.find("telemetry");
  ASSERT_NE(telem, nullptr);
  EXPECT_EQ(telem->find("counters")->find("harness.probes")->as_u64(), 7u);
}

}  // namespace
}  // namespace idseval::harness
