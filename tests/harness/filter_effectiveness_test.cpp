// Measured Effectiveness of Generated Filters: after the console blocks
// an offender, later attacks from that source must be suppressed, and the
// suppression/collateral balance must be visible in the RunResult.
#include <gtest/gtest.h>

#include "harness/evaluate.hpp"
#include "harness/testbed.hpp"

namespace idseval::harness {
namespace {

using attack::AttackKind;
using netsim::SimTime;

TestbedConfig quick_env() {
  TestbedConfig env;
  env.profile = traffic::rt_cluster_profile();
  env.internal_hosts = 6;
  env.external_hosts = 3;
  env.seed = 91;
  env.warmup = SimTime::from_sec(6);
  env.measure = SimTime::from_sec(25);
  env.drain = SimTime::from_sec(3);
  return env;
}

TEST(FilterEffectivenessTest, RepeatOffenderSuppressedAfterBlock) {
  const auto& model =
      products::product(products::ProductId::kGuardSecure);
  // No benign traffic sources from outside: the attacker's address then
  // carries attacks only, so a correct filter has zero collateral.
  TestbedConfig env = quick_env();
  env.profile.external_fraction = 0.0;
  Testbed bed(env, &model, 0.6);

  // One attacker fires a critical web exploit early, then keeps
  // attacking: the first exploit triggers the firewall block; later
  // attacks from the same source count as suppressed.
  attack::Scenario scenario;
  for (int i = 0; i < 6; ++i) {
    attack::ScenarioStep step;
    step.when = SimTime::from_sec(1.0 + 3.0 * i);
    step.kind = AttackKind::kWebExploit;
    step.attacker_index = 0;  // same attacker every time
    step.victim_index = static_cast<std::size_t>(i);
    scenario.add_step(step);
  }
  const RunResult r = bed.run(scenario);

  ASSERT_GT(r.firewall_blocks, 0u);
  EXPECT_GT(r.post_block_attacks_suppressed, 0u);
  // With external_fraction = 0 the blocked address carries attacks only,
  // so the generated filter locks out no legitimate users.
  EXPECT_EQ(r.post_block_benign_collateral, 0u);

  // Post-block attack transactions never reached the sensors; the
  // harness classifies them as prevented, NOT as Type II errors — a
  // product must not score worse for reacting.
  EXPECT_EQ(r.prevented_attacks, r.post_block_attacks_suppressed);
  EXPECT_EQ(r.true_detections + r.missed_attacks + r.prevented_attacks,
            r.attacks);
  EXPECT_EQ(r.missed_attacks, 0u);  // every exploit was seen or prevented
}

TEST(FilterEffectivenessTest, EvaluationScoresTheFilter) {
  const auto& model =
      products::product(products::ProductId::kGuardSecure);
  EvaluationOptions opt;
  opt.sensitivity = 0.6;
  opt.attacks_per_kind = 3;
  opt.include_load_metrics = false;
  const Evaluation eval = evaluate_product(quick_env(), model, opt);
  if (eval.measured.detection_run.firewall_blocks > 0) {
    const auto& entry =
        eval.card.at(core::MetricId::kEffectivenessOfGeneratedFilters);
    EXPECT_GE(entry.score.value(), 1);
    EXPECT_NE(entry.note.find("suppressed"), std::string::npos);
  }
}

TEST(FilterEffectivenessTest, NonBlockingProductKeepsFactScore) {
  const auto& model =
      products::product(products::ProductId::kSentryNid);  // cannot block
  EvaluationOptions opt;
  opt.include_load_metrics = false;
  const Evaluation eval = evaluate_product(quick_env(), model, opt);
  EXPECT_EQ(eval.measured.detection_run.firewall_blocks, 0u);
  // Fact-sheet score for filter generation remains untouched.
  EXPECT_TRUE(
      eval.card.has(core::MetricId::kEffectivenessOfGeneratedFilters));
}

}  // namespace
}  // namespace idseval::harness

namespace idseval::harness {
namespace {

TEST(FilterEffectivenessTest, BlockingSharedAddressShowsCollateral) {
  // When the offender address also carries legitimate traffic, blocking
  // it shuts those users out — the §2.2 "faulty policy" cost, measured.
  const auto& model =
      products::product(products::ProductId::kGuardSecure);
  TestbedConfig env;
  env.profile = traffic::rt_cluster_profile();
  env.profile.external_fraction = 0.5;  // externals are heavy legit users
  env.internal_hosts = 6;
  env.external_hosts = 1;  // ...and there is only one external address
  env.seed = 91;
  env.warmup = netsim::SimTime::from_sec(6);
  env.measure = netsim::SimTime::from_sec(25);
  env.drain = netsim::SimTime::from_sec(3);
  Testbed bed(env, &model, 0.6);

  attack::Scenario scenario;
  attack::ScenarioStep step;
  step.when = netsim::SimTime::from_sec(1);
  step.kind = attack::AttackKind::kWebExploit;
  scenario.add_step(step);
  const RunResult r = bed.run(scenario);
  if (r.firewall_blocks > 0) {
    EXPECT_GT(r.post_block_benign_collateral, 0u);
  }
}

}  // namespace
}  // namespace idseval::harness
