// Single-pass sweep regression: within the no-feedback envelope (pattern
// rules only, no anomaly engine, no console reactions, no host agents)
// the ledger-derived sweep must reproduce the re-simulated reference
// sweep point for point, and attaching a ledger must never change what a
// full-featured product detects.
#include <cmath>

#include <gtest/gtest.h>

#include "attack/scenario.hpp"
#include "harness/measure.hpp"
#include "harness/testbed.hpp"
#include "products/catalog.hpp"
#include "score/ledger.hpp"
#include "util/rng.hpp"

namespace idseval::harness {
namespace {

using netsim::SimTime;

/// A pattern-rules-only signature product: detection is a pure per-packet
/// predicate of (rule confidence, sensitivity) with no feedback into the
/// simulation — exactly the envelope where the ledger sweep is exact.
/// Threshold rules are excluded because their confidence gate also gates
/// window-state updates; the anomaly engine because its winsorized
/// learning and cooldowns couple state to the trigger threshold; the
/// console because firewall blocks change subsequent traffic.
products::ProductModel pattern_only_model() {
  products::ProductModel model;
  model.id = products::ProductId::kSentryNid;
  model.name = "PatternOnly";
  model.description = "equivalence-test fixture";
  model.deploys_host_agents = false;
  model.make_config = [](double sensitivity) {
    ids::PipelineConfig c;
    c.product = "PatternOnly";
    c.sensor_count = 1;
    c.sensor.base_ops_per_packet = 1000.0;
    c.sensor.ops_per_sec = 1e9;  // generous: no overload feedback
    c.sensor.queue_capacity = 65536;
    c.signature_engine = true;
    c.anomaly_engine = false;
    c.rules = ids::standard_rule_set();
    c.rules.thresholds.clear();
    c.analyzer_count = 1;
    c.analyzer.ops_per_detection = 100.0;
    c.monitor.min_severity = 1;
    c.use_console = false;
    c.sensitivity = sensitivity;
    return c;
  };
  return model;
}

TestbedConfig short_env() {
  TestbedConfig env;
  env.warmup = SimTime::from_sec(5);
  env.measure = SimTime::from_sec(25);
  env.drain = SimTime::from_sec(3);
  env.seed = 42;
  return env;
}

TEST(SinglePassSweepTest, MatchesResimulatedSweepWithinTolerance) {
  const TestbedConfig env = short_env();
  const products::ProductModel model = pattern_only_model();
  const std::vector<double> sensitivities = {0.0,  0.1, 0.25, 0.4, 0.5,
                                             0.65, 0.8, 0.9,  1.0};

  const std::vector<ErrorRatePoint> reference =
      sensitivity_sweep(env, model, sensitivities, 4);
  const SinglePassSweep single =
      single_pass_sensitivity_sweep(env, model, sensitivities, 4);

  ASSERT_EQ(single.points.size(), reference.size());
  ASSERT_GT(single.roc.transactions(), 0u);
  ASSERT_GT(single.roc.attacks(), 0u);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    SCOPED_TRACE("sensitivity " +
                 std::to_string(reference[i].sensitivity));
    EXPECT_NEAR(single.points[i].fp_ratio, reference[i].fp_ratio, 1e-9);
    EXPECT_NEAR(single.points[i].fn_ratio, reference[i].fn_ratio, 1e-9);
    EXPECT_NEAR(single.points[i].fp_percent_of_benign,
                reference[i].fp_percent_of_benign, 1e-9);
    EXPECT_NEAR(single.points[i].fn_percent_of_attacks,
                reference[i].fn_percent_of_attacks, 1e-9);
  }

  const EqualErrorRate ref_eer = equal_error_rate(reference);
  const EqualErrorRate single_eer = equal_error_rate(single.points);
  ASSERT_EQ(ref_eer.found, single_eer.found);
  if (ref_eer.found) {
    EXPECT_NEAR(single_eer.error_percent, ref_eer.error_percent, 1e-9);
    EXPECT_NEAR(single_eer.sensitivity, ref_eer.sensitivity, 1e-9);
  }
}

TEST(SinglePassSweepTest, RecordSensitivityDoesNotMatterInsideEnvelope) {
  // The recorded run's own sensitivity only gates which alerts IT raises;
  // the evidence stream underneath is the same, so the derived sweep must
  // be identical whichever knob setting recorded it.
  const TestbedConfig env = short_env();
  const products::ProductModel model = pattern_only_model();
  const std::vector<double> sensitivities = {0.0, 0.5, 1.0};

  const SinglePassSweep low = single_pass_sensitivity_sweep(
      env, model, sensitivities, 4, /*record_sensitivity=*/0.1);
  const SinglePassSweep high = single_pass_sensitivity_sweep(
      env, model, sensitivities, 4, /*record_sensitivity=*/0.9);
  ASSERT_EQ(low.points.size(), high.points.size());
  for (std::size_t i = 0; i < low.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(low.points[i].fp_percent_of_benign,
                     high.points[i].fp_percent_of_benign);
    EXPECT_DOUBLE_EQ(low.points[i].fn_percent_of_attacks,
                     high.points[i].fn_percent_of_attacks);
  }
}

TEST(SinglePassSweepTest, AttachingLedgerNeverChangesDetection) {
  // Full-featured product (anomaly engine, load balancer, console): the
  // ledger is purely observational, so the run's confusion counts must be
  // bit-identical with and without it.
  const TestbedConfig env = short_env();
  const products::ProductModel& model =
      products::product(products::ProductId::kFlowHunt);
  const auto scenario = attack::Scenario::mixed(
      4, SimTime::zero(), env.measure * 0.9,
      util::hash64("sweep") ^ env.seed, env.external_hosts,
      env.internal_hosts);

  Testbed plain(env, &model, 0.6);
  const RunResult without = plain.run(scenario);

  score::ScoreLedger ledger;
  Testbed recorded(env, &model, 0.6);
  recorded.set_score_ledger(&ledger);
  const RunResult with = recorded.run(scenario);

  EXPECT_EQ(with.transactions, without.transactions);
  EXPECT_EQ(with.attacks, without.attacks);
  EXPECT_EQ(with.true_detections, without.true_detections);
  EXPECT_EQ(with.false_alarms, without.false_alarms);
  EXPECT_EQ(with.missed_attacks, without.missed_attacks);
  EXPECT_DOUBLE_EQ(with.timeliness_mean_sec, without.timeliness_mean_sec);
  EXPECT_TRUE(ledger.finalized());
  EXPECT_EQ(ledger.samples().size(), with.transactions);
}

}  // namespace
}  // namespace idseval::harness
