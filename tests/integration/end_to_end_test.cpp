// Cross-module integration: full testbed evaluations exercising the
// paper's methodology end to end, parameterized across products and
// environments (TEST_P property sweeps on the Figure 3 invariants).
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "harness/evaluate.hpp"
#include "products/scoring.hpp"
#include "traffic/trace.hpp"

namespace idseval {
namespace {

using harness::RunResult;
using harness::Testbed;
using harness::TestbedConfig;
using netsim::SimTime;
using products::ProductId;

TestbedConfig env_for(const std::string& profile, std::uint64_t seed) {
  TestbedConfig env;
  env.profile = traffic::profile_by_name(profile);
  env.internal_hosts = 6;
  env.external_hosts = 3;
  env.seed = seed;
  env.warmup = SimTime::from_sec(8);
  env.measure = SimTime::from_sec(20);
  env.drain = SimTime::from_sec(3);
  return env;
}

struct Case {
  ProductId product;
  const char* profile;
  std::uint64_t seed;
};

class ConfusionInvariants : public ::testing::TestWithParam<Case> {};

TEST_P(ConfusionInvariants, Figure3Identities) {
  const Case c = GetParam();
  const auto& model = products::product(c.product);
  Testbed bed(env_for(c.profile, c.seed), &model, 0.5);
  const auto scenario = attack::Scenario::mixed(
      2, SimTime::zero(), SimTime::from_sec(18), c.seed ^ 0xbeef, 3, 6);
  const RunResult r = bed.run(scenario);

  // Set identities of Figure 3.
  EXPECT_EQ(r.attacks + (r.transactions - r.attacks), r.transactions);
  EXPECT_EQ(r.true_detections + r.missed_attacks + r.prevented_attacks,
            r.attacks);
  EXPECT_EQ(r.detected, r.true_detections + r.false_alarms);

  // Ratio bounds: FP + FN <= 1, each in [0, 1].
  EXPECT_GE(r.fp_ratio, 0.0);
  EXPECT_GE(r.fn_ratio, 0.0);
  EXPECT_LE(r.fp_ratio + r.fn_ratio, 1.0);

  // FN bounded by the attack share of transactions.
  EXPECT_LE(r.fn_ratio,
            static_cast<double>(r.attacks) /
                    static_cast<double>(r.transactions) +
                1e-12);

  // Per-kind counts sum to the global counts.
  std::size_t launched = 0;
  std::size_t detected = 0;
  std::size_t prevented = 0;
  for (const auto& [kind, outcome] : r.per_kind) {
    launched += outcome.launched;
    detected += outcome.detected;
    prevented += outcome.prevented;
    EXPECT_LE(outcome.detected + outcome.prevented, outcome.launched);
  }
  EXPECT_EQ(launched, r.attacks);
  EXPECT_EQ(detected, r.true_detections);
  EXPECT_EQ(prevented, r.prevented_attacks);

  // Timeliness only meaningful when something was detected.
  if (r.true_detections > 0) {
    EXPECT_GT(r.timeliness_mean_sec, 0.0);
    EXPECT_LE(r.timeliness_mean_sec, r.timeliness_max_sec);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProductsAndProfiles, ConfusionInvariants,
    ::testing::Values(
        Case{ProductId::kSentryNid, "rt_cluster", 1},
        Case{ProductId::kSentryNid, "ecommerce", 2},
        Case{ProductId::kGuardSecure, "rt_cluster", 3},
        Case{ProductId::kGuardSecure, "office", 4},
        Case{ProductId::kFlowHunt, "rt_cluster", 5},
        Case{ProductId::kFlowHunt, "ecommerce", 6},
        Case{ProductId::kAgentSwarm, "rt_cluster", 7},
        Case{ProductId::kAgentSwarm, "office", 8}));

TEST(EndToEndTest, DetectionSurfacesMatchEngineTypes) {
  // The paper's §2.1 claim, observed end to end: signature products miss
  // novel attacks; the anomaly product catches them; the hybrid research
  // system catches both families.
  const auto env = env_for("rt_cluster", 42);
  const auto scenario = attack::Scenario::mixed(
      3, SimTime::zero(), SimTime::from_sec(18), 4242, 3, 6);

  auto run_product = [&](ProductId id) {
    Testbed bed(env, &products::product(id), 0.5);
    return bed.run(scenario);
  };

  const RunResult sentry = run_product(ProductId::kSentryNid);
  EXPECT_EQ(sentry.per_kind.at(attack::AttackKind::kNovelExploit).detected,
            0u);
  EXPECT_EQ(sentry.per_kind.at(attack::AttackKind::kWebExploit).detected,
            3u);

  const RunResult flowhunt = run_product(ProductId::kFlowHunt);
  EXPECT_GT(flowhunt.per_kind.at(attack::AttackKind::kNovelExploit)
                .detected,
            0u);
  EXPECT_GT(flowhunt.per_kind.at(attack::AttackKind::kDnsTunnel).detected,
            0u);

  const RunResult swarm = run_product(ProductId::kAgentSwarm);
  EXPECT_GT(swarm.per_kind.at(attack::AttackKind::kNovelExploit).detected,
            0u);
  EXPECT_GT(swarm.per_kind.at(attack::AttackKind::kWebExploit).detected,
            0u);

  // Anomaly-based products pay for the coverage in Type I errors.
  EXPECT_GT(flowhunt.false_alarms, sentry.false_alarms);
}

TEST(EndToEndTest, AnomalyProductNoisierOnDiverseTraffic) {
  // §4: commercial environments with diverse content make behaviour-based
  // detection noisier than a tuned cluster does.
  const auto scenario = attack::Scenario::mixed(
      2, SimTime::zero(), SimTime::from_sec(18), 9, 3, 6);
  const auto& model = products::product(ProductId::kFlowHunt);

  Testbed cluster(env_for("rt_cluster", 77), &model, 0.6);
  const RunResult on_cluster = cluster.run(scenario);
  Testbed shop(env_for("ecommerce", 77), &model, 0.6);
  const RunResult on_shop = shop.run(scenario);

  const double cluster_fp_pct =
      static_cast<double>(on_cluster.false_alarms) /
      static_cast<double>(on_cluster.transactions - on_cluster.attacks);
  const double shop_fp_pct =
      static_cast<double>(on_shop.false_alarms) /
      static_cast<double>(on_shop.transactions - on_shop.attacks);
  EXPECT_GT(shop_fp_pct, cluster_fp_pct);
}

TEST(EndToEndTest, FullEvaluationRendersCompleteTables) {
  const auto env = env_for("rt_cluster", 55);
  harness::EvaluationOptions opt;
  opt.include_load_metrics = false;
  std::vector<core::Scorecard> cards;
  for (const auto id : products::commercial_products()) {
    cards.push_back(
        harness::evaluate_product(env, products::product(id), opt).card);
  }
  const std::string t1 = core::render_metric_table(
      "Table 1", core::table1_logistical_metrics(), cards);
  const std::string t3 = core::render_metric_table(
      "Table 3", core::table3_performance_metrics(), cards);
  for (const auto& card : cards) {
    EXPECT_NE(t1.find(card.product()), std::string::npos);
    EXPECT_NE(t3.find(card.product()), std::string::npos);
  }
  // Every Table 1 metric row must be scored (no "-" cells in class 1).
  EXPECT_EQ(t1.find(" - "), std::string::npos) << t1;

  const core::WeightSet weights =
      core::realtime_distributed_requirements().derive_weights();
  const std::string summary =
      core::render_weighted_summary("Ranking", cards, weights);
  EXPECT_NE(summary.find("Rank"), std::string::npos);
}

TEST(EndToEndTest, RepeatedEvaluationIsBitIdentical) {
  // The methodology's headline property: "Using a standard as the basis
  // for comparison gives us scientific repeatability" (§1).
  const auto env = env_for("office", 1234);
  harness::EvaluationOptions opt;
  opt.include_load_metrics = false;
  const auto& model = products::product(ProductId::kGuardSecure);
  const auto a = harness::evaluate_product(env, model, opt);
  const auto b = harness::evaluate_product(env, model, opt);
  ASSERT_EQ(a.card.size(), b.card.size());
  for (const auto& [id, entry] : a.card.entries()) {
    EXPECT_EQ(entry.score, b.card.at(id).score) << core::to_string(id);
    EXPECT_EQ(entry.note, b.card.at(id).note) << core::to_string(id);
  }
}

TEST(EndToEndTest, TraceReplayReproducesDetections) {
  // Record a run's attack traffic from the switch mirror, replay it into
  // a fresh testbed, and verify the signature IDS flags the replayed
  // attacks — the §4 canned-data methodology end to end.
  traffic::Trace trace;
  {
    netsim::Simulator sim;
    netsim::Network net(sim);
    net.add_host("victim", netsim::Ipv4(10, 0, 0, 2));
    net.add_external_host("attacker", netsim::Ipv4(198, 51, 100, 1));
    traffic::TransactionLedger ledger;
    attack::AttackEmitter emitter(sim, net, ledger, 3);
    net.lan_switch().add_mirror([&](const netsim::Packet& p) {
      trace.append_absolute(sim.now(), p);
    });
    emitter.launch(attack::AttackKind::kWebExploit,
                   netsim::Ipv4(198, 51, 100, 1), netsim::Ipv4(10, 0, 0, 2),
                   SimTime::from_ms(5));
    sim.run_until();
  }
  ASSERT_FALSE(trace.empty());

  // Round-trip through serialization, then replay against SentryNID.
  const traffic::Trace canned =
      traffic::Trace::deserialize(trace.serialize());
  netsim::Simulator sim;
  netsim::Network net(sim);
  net.add_host("victim", netsim::Ipv4(10, 0, 0, 2));
  net.add_external_host("attacker", netsim::Ipv4(198, 51, 100, 1));
  ids::Pipeline pipeline(
      sim, net,
      products::product(ProductId::kSentryNid).make_config(0.5));
  pipeline.attach();
  pipeline.set_learning(false);
  canned.replay(sim, net, SimTime::from_ms(1));
  sim.run_until();
  EXPECT_GE(pipeline.monitor().log().size(), 1u);
}

}  // namespace
}  // namespace idseval
