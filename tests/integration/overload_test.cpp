// Failure injection / overload behaviour across modules: what happens to
// detection when the offered load blows past the sensor's capacity. This
// is why Table 3 carries Maximal Throughput with Zero Loss and Network
// Lethal Dose: "they must not ... introduce bottlenecks ... They must
// execute deterministically and fail in a mode that does not hamper
// system performance" (§2).
#include <gtest/gtest.h>

#include "harness/testbed.hpp"

namespace idseval {
namespace {

using harness::RunResult;
using harness::Testbed;
using harness::TestbedConfig;
using netsim::SimTime;

/// A deliberately under-provisioned single-sensor signature product.
products::ProductModel weak_product(
    ids::RecoveryPolicy recovery = ids::RecoveryPolicy::kAppRestart) {
  products::ProductModel model =
      products::product(products::ProductId::kSentryNid);
  model.name = "WeakSentry";
  model.make_config = [recovery](double s) {
    auto c = products::product(products::ProductId::kSentryNid)
                 .make_config(s);
    c.sensor.ops_per_sec = 5e6;  // ~750 pps capacity
    c.sensor.queue_capacity = 256;
    c.sensor.overload_tolerance = netsim::SimTime::from_ms(150);
    c.sensor.recovery = recovery;
    return c;
  };
  return model;
}

TestbedConfig env_at(double rate_scale, std::uint64_t seed = 404) {
  TestbedConfig env;
  env.profile = traffic::rt_cluster_profile();
  env.internal_hosts = 6;
  env.external_hosts = 3;
  env.seed = seed;
  env.rate_scale = rate_scale;
  env.warmup = SimTime::from_sec(6);
  env.measure = SimTime::from_sec(15);
  env.drain = SimTime::from_sec(3);
  return env;
}

RunResult run_with_attacks(const products::ProductModel& model,
                           double rate_scale) {
  Testbed bed(env_at(rate_scale), &model, 0.5);
  const auto scenario = attack::Scenario::of_kinds(
      {attack::AttackKind::kWebExploit, attack::AttackKind::kSmtpWorm,
       attack::AttackKind::kBruteForceLogin},
      4, SimTime::zero(), SimTime::from_sec(13), 11, 3, 6);
  return bed.run(scenario);
}

TEST(OverloadTest, DetectionDegradesPastTheKnee) {
  const products::ProductModel model = weak_product();
  const RunResult nominal = run_with_attacks(model, 1.0);
  const RunResult overloaded = run_with_attacks(model, 20.0);

  // Below the knee: clean pipeline, everything known is caught.
  EXPECT_EQ(nominal.missed_attacks, 0u);
  EXPECT_LT(nominal.ids_loss_ratio, 0.01);

  // Past the knee the IDS drops traffic and misses attacks it would
  // otherwise catch — the unprotected-network failure mode.
  EXPECT_GT(overloaded.ids_loss_ratio, 0.3);
  EXPECT_GT(overloaded.missed_attacks, 0u);
  EXPECT_GT(overloaded.fn_ratio, nominal.fn_ratio);
}

TEST(OverloadTest, HangRecoveryLosesTheRestOfTheRun) {
  const RunResult hang =
      run_with_attacks(weak_product(ids::RecoveryPolicy::kHang), 20.0);
  const RunResult restart =
      run_with_attacks(weak_product(ids::RecoveryPolicy::kAppRestart),
                       20.0);
  // Both fail; the hanging sensor stays down so it processes less and
  // misses at least as much as the restarting one.
  EXPECT_GT(hang.sensor_failures, 0u);
  EXPECT_GT(restart.sensor_failures, 0u);
  EXPECT_LE(restart.ids_loss_ratio, hang.ids_loss_ratio + 1e-9);
  EXPECT_GE(hang.missed_attacks, restart.missed_attacks);
}

TEST(OverloadTest, ProductionTrafficUnaffectedByPassiveIdsCollapse) {
  // A mirrored IDS dying must not hamper the monitored system (§2): the
  // production network's own delivery stays intact.
  const products::ProductModel model = weak_product();
  Testbed bed(env_at(20.0), &model, 0.5);
  const RunResult r = bed.run_clean();
  EXPECT_GT(r.ids_loss_ratio, 0.3);      // the IDS is overwhelmed...
  EXPECT_GT(r.offered_pps, 0.0);
  // ...but production latency stays at LAN scale (well under 1 ms).
  EXPECT_LT(r.mean_delivery_latency_sec, 1e-3);
}

TEST(OverloadTest, FailureEventsVisibleInRunResult) {
  const products::ProductModel model =
      weak_product(ids::RecoveryPolicy::kColdReboot);
  Testbed bed(env_at(20.0), &model, 0.5);
  const RunResult r = bed.run_clean();
  EXPECT_GT(r.sensor_failures, 0u);
}

}  // namespace
}  // namespace idseval
