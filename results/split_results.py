#!/usr/bin/env python3
"""Splits bench_output.txt (the `for b in build/bench/*` sweep) into one
file per bench binary under results/, so EXPERIMENTS.md can reference a
stable per-experiment artifact."""
import os
import re
import sys

root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
src = os.path.join(root, "bench_output.txt")
out_dir = os.path.join(root, "results")

current = None
handle = None
with open(src) as f:
    for line in f:
        m = re.match(r"^===== (bench_\w+) =====$", line.strip())
        if m:
            if handle:
                handle.close()
            current = m.group(1)
            handle = open(os.path.join(out_dir, current + ".txt"), "w")
            continue
        if handle and not line.startswith("rc="):
            handle.write(line)
if handle:
    handle.close()
print("split complete")
